// Proxy credential creation and delegation (paper §2.3–2.4).
//
// Local creation (grid-proxy-init): generate a fresh key pair and sign a
// short-lived proxy certificate with the user's credential.
//
// Remote delegation: a three-step handshake in which the private key never
// leaves the receiver —
//   receiver:  begin_delegation()      -> fresh key + CSR
//   sender:    delegate_credential()   -> signs the CSR into a proxy chain
//   receiver:  complete_delegation()   -> binds key + chain into a Credential
// MyProxy uses this handshake in both directions: myproxy-init delegates a
// proxy *to* the repository (Figure 1), and myproxy-get-delegation delegates
// one *from* it (Figure 2).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "gsi/credential.hpp"
#include "pki/certificate_request.hpp"
#include "pki/proxy_policy.hpp"

namespace myproxy::gsi {

struct ProxyOptions {
  /// Requested proxy lifetime; clamped so the proxy never outlives its
  /// issuer certificate (lifetime nesting, verified at the relying party).
  Seconds lifetime = kDefaultProxyLifetime;

  /// Issue a "CN=limited proxy" (job managers refuse these).
  bool limited = false;

  /// Optional restricted-proxy policy to embed (paper §6.5).
  std::optional<pki::RestrictionPolicy> restriction;

  /// Key type for the fresh proxy key pair. 512-bit RSA was the 2001
  /// default for proxies (speed over longevity); we default to EC P-256.
  crypto::KeySpec key_spec = crypto::KeySpec::ec();
};

/// grid-proxy-init: create a proxy credential locally from `issuer`.
[[nodiscard]] Credential create_proxy(const Credential& issuer,
                                      const ProxyOptions& options = {});

/// Receiver-side state for an in-flight delegation.
struct DelegationRequest {
  crypto::KeyPair key;   // stays on the receiver
  std::string csr_pem;   // travels to the sender
};

/// Step 1 (receiver): fresh key pair + CSR. The CSR subject is a
/// placeholder; the sender derives the actual proxy subject from its own
/// DN, which prevents the receiver from requesting an arbitrary identity.
[[nodiscard]] DelegationRequest begin_delegation(
    const crypto::KeySpec& key_spec = crypto::KeySpec::ec());

/// Step 1 with a caller-supplied fresh key (e.g. from a
/// crypto::KeyPairPool): skips the synchronous generation, builds only the
/// CSR. The key must be private and must never have been used before.
[[nodiscard]] DelegationRequest begin_delegation(crypto::KeyPair key);

/// Step 2 (sender): verify the CSR's proof of possession and sign a proxy
/// certificate over its public key. Returns the full certificate chain PEM
/// (new proxy first) for the receiver. Throws if `issuer` is expired.
[[nodiscard]] std::string delegate_credential(const Credential& issuer,
                                              std::string_view csr_pem,
                                              const ProxyOptions& options = {});

/// Step 3 (receiver): combine the retained key with the returned chain.
/// Verifies the chain's leaf matches `key` and that the proxy links are
/// internally consistent.
[[nodiscard]] Credential complete_delegation(crypto::KeyPair key,
                                             std::string_view chain_pem);

}  // namespace myproxy::gsi
