#include "gsi/credential.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/format.hpp"

namespace myproxy::gsi {

Credential::Credential(pki::Certificate cert, crypto::KeyPair key,
                       std::vector<pki::Certificate> chain)
    : cert_(std::move(cert)), key_(std::move(key)), chain_(std::move(chain)) {
  if (!cert_.valid()) {
    throw Error(ErrorCode::kInternal, "credential requires a certificate");
  }
  if (!key_.valid() || !key_.has_private()) {
    throw CryptoError("credential requires a private key");
  }
  if (!cert_.public_key().same_public_key(key_)) {
    throw VerificationError(
        "credential certificate does not match the private key");
  }
}

std::vector<pki::Certificate> Credential::full_chain() const {
  std::vector<pki::Certificate> out;
  out.reserve(chain_.size() + 1);
  out.push_back(cert_);
  out.insert(out.end(), chain_.begin(), chain_.end());
  return out;
}

const pki::Certificate& Credential::end_entity() const {
  if (!cert_.is_proxy()) return cert_;
  for (const auto& cert : chain_) {
    if (!cert.is_proxy()) return cert;
  }
  throw VerificationError(
      "proxy credential chain contains no end-entity certificate");
}

pki::DistinguishedName Credential::identity() const {
  return end_entity().subject();
}

pki::DistinguishedName Credential::subject() const { return cert_.subject(); }

std::size_t Credential::delegation_depth() const {
  if (!cert_.is_proxy()) return 0;
  std::size_t depth = 1;
  for (const auto& cert : chain_) {
    if (!cert.is_proxy()) break;
    ++depth;
  }
  return depth;
}

TimePoint Credential::not_after() const {
  TimePoint earliest = cert_.not_after();
  for (const auto& cert : chain_) {
    if (!cert.is_proxy()) break;  // EEC lifetime governs itself
    earliest = std::min(earliest, cert.not_after());
  }
  return earliest;
}

Seconds Credential::remaining_lifetime() const {
  return std::chrono::duration_cast<Seconds>(not_after() - now());
}

SecureBuffer Credential::to_pem() const {
  std::string out = cert_.to_pem();
  out += key_.private_pem().str();
  for (const auto& cert : chain_) out += cert.to_pem();
  SecureBuffer buffer{std::string_view(out)};
  secure_wipe(out.data(), out.size());
  return buffer;
}

std::string Credential::to_pem_encrypted(std::string_view pass_phrase) const {
  std::string out = cert_.to_pem();
  out += key_.private_pem_encrypted(pass_phrase);
  for (const auto& cert : chain_) out += cert.to_pem();
  return out;
}

std::string Credential::certificate_chain_pem() const {
  return pki::Certificate::chain_to_pem(full_chain());
}

Credential Credential::from_pem(std::string_view pem,
                                std::string_view pass_phrase) {
  auto certs = pki::Certificate::chain_from_pem(pem);
  // The key block sits between the leaf cert and the rest of the chain;
  // KeyPair's PEM reader finds the first key block wherever it is.
  crypto::KeyPair key = crypto::KeyPair::from_private_pem(pem, pass_phrase);
  pki::Certificate leaf = std::move(certs.front());
  certs.erase(certs.begin());
  return Credential(std::move(leaf), std::move(key), std::move(certs));
}

}  // namespace myproxy::gsi
