// Gridmap: DN -> local account mapping (paper §2.1: "Unix hosts have a file
// containing DN and username pairs"). Grid resources use it to translate an
// authenticated Grid identity into a local identity.
//
// File format (one mapping per line, DN quoted as in Globus):
//   "/C=US/O=Grid/CN=Alice" alice
//   "/C=US/O=Grid/OU=Robots/*" robot      # glob patterns allowed
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pki/distinguished_name.hpp"

namespace myproxy::gsi {

class Gridmap {
 public:
  Gridmap() = default;

  static Gridmap parse(std::string_view text);
  static Gridmap load(const std::filesystem::path& path);

  /// Add a mapping programmatically. `dn_pattern` may contain globs.
  void add(std::string dn_pattern, std::string username);

  /// Local account for `dn`: exact matches win over glob matches; among
  /// globs the first added wins. nullopt if unmapped.
  [[nodiscard]] std::optional<std::string> lookup(
      const pki::DistinguishedName& dn) const;
  [[nodiscard]] std::optional<std::string> lookup(std::string_view dn) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace myproxy::gsi
