#include "gsi/proxy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"
#include "pki/certificate_builder.hpp"

namespace myproxy::gsi {

namespace {

constexpr std::string_view kLogComponent = "gsi.proxy";

/// Subject DN of the CSR sent during delegation. Deliberately constant: the
/// sender never honors the requested subject.
const pki::DistinguishedName& delegation_placeholder_dn() {
  static const pki::DistinguishedName dn =
      pki::DistinguishedName::parse("/CN=delegation request");
  return dn;
}

pki::Certificate sign_proxy_certificate(const Credential& issuer,
                                        const crypto::KeyPair& public_key,
                                        const ProxyOptions& options) {
  if (options.lifetime <= Seconds(0)) {
    throw PolicyError("proxy lifetime must be positive");
  }
  if (issuer.expired()) {
    throw ExpiredError(
        fmt::format("issuing credential for {} has expired",
                    issuer.identity().str()));
  }
  const std::string_view cn =
      options.limited ? pki::kLimitedProxyCn : pki::kProxyCn;

  // Clamp so the proxy cannot outlive the credential that signs it; relying
  // parties enforce this nesting, so issuing looser proxies would only
  // manufacture unverifiable credentials.
  const TimePoint not_before = now() - pki::kValiditySkew;
  const TimePoint requested_end = now() + options.lifetime;
  const TimePoint not_after = std::min(requested_end, issuer.not_after());

  pki::CertificateBuilder builder;
  builder.subject(issuer.subject().with_cn(cn))
      .issuer(issuer.subject())
      .public_key(public_key)
      .validity(not_before, not_after)
      .ca(false);
  if (options.restriction.has_value()) {
    builder.restriction(*options.restriction);
  }
  return builder.sign(issuer.key());
}

}  // namespace

Credential create_proxy(const Credential& issuer,
                        const ProxyOptions& options) {
  crypto::KeyPair proxy_key = crypto::KeyPair::generate(options.key_spec);
  pki::Certificate proxy_cert =
      sign_proxy_certificate(issuer, proxy_key, options);

  std::vector<pki::Certificate> chain;
  chain.reserve(issuer.chain().size() + 1);
  chain.push_back(issuer.certificate());
  chain.insert(chain.end(), issuer.chain().begin(), issuer.chain().end());

  log::debug(kLogComponent, "created {} for {} (lifetime {})",
             to_string(proxy_cert.proxy_type()), issuer.identity().str(),
             format_duration(std::chrono::duration_cast<Seconds>(
                 proxy_cert.not_after() - now())));
  return Credential(std::move(proxy_cert), std::move(proxy_key),
                    std::move(chain));
}

DelegationRequest begin_delegation(const crypto::KeySpec& key_spec) {
  return begin_delegation(crypto::KeyPair::generate(key_spec));
}

DelegationRequest begin_delegation(crypto::KeyPair key) {
  if (!key.valid() || !key.has_private()) {
    throw PolicyError("delegation requires a fresh private key");
  }
  DelegationRequest request;
  request.key = std::move(key);
  request.csr_pem =
      pki::CertificateRequest::create(delegation_placeholder_dn(),
                                      request.key)
          .to_pem();
  return request;
}

std::string delegate_credential(const Credential& issuer,
                                std::string_view csr_pem,
                                const ProxyOptions& options) {
  const auto csr = pki::CertificateRequest::from_pem(csr_pem);
  if (!csr.verify()) {
    throw VerificationError(
        "delegation CSR proof-of-possession signature is invalid");
  }
  const pki::Certificate proxy_cert =
      sign_proxy_certificate(issuer, csr.public_key(), options);

  std::string out = proxy_cert.to_pem();
  out += issuer.certificate_chain_pem();
  return out;
}

Credential complete_delegation(crypto::KeyPair key,
                               std::string_view chain_pem) {
  auto certs = pki::Certificate::chain_from_pem(chain_pem);
  pki::Certificate leaf = std::move(certs.front());
  certs.erase(certs.begin());

  if (!leaf.public_key().same_public_key(key)) {
    throw VerificationError(
        "delegated certificate does not match the locally generated key");
  }
  if (!leaf.is_proxy()) {
    throw VerificationError("delegated certificate is not a proxy");
  }
  if (certs.empty()) {
    throw VerificationError("delegated chain is missing issuer certificates");
  }
  if (!leaf.signed_by(certs.front())) {
    throw VerificationError(
        "delegated proxy is not signed by the adjacent chain certificate");
  }
  return Credential(std::move(leaf), std::move(key), std::move(certs));
}

}  // namespace myproxy::gsi
