// DN-pattern access control lists. The MyProxy repository keeps two of
// these (paper §5.1): `accepted_credentials` — who may *store* credentials —
// and `authorized_retrievers` — who may *retrieve* delegations. The second
// list is what stops a stolen pass phrase alone from being sufficient to
// extract a user's proxy.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pki/distinguished_name.hpp"

namespace myproxy::gsi {

class AccessControlList {
 public:
  AccessControlList() = default;

  /// `patterns` use shell globs over the one-line DN form,
  /// e.g. "/C=US/O=Grid/OU=Portals/*".
  explicit AccessControlList(std::vector<std::string> patterns)
      : patterns_(std::move(patterns)) {}

  void add(std::string pattern) { patterns_.push_back(std::move(pattern)); }

  /// True if any pattern matches. An empty ACL denies everyone —
  /// "restricting service to authorized clients" is the default posture.
  [[nodiscard]] bool allows(const pki::DistinguishedName& dn) const;
  [[nodiscard]] bool allows(std::string_view dn) const;

  [[nodiscard]] bool empty() const noexcept { return patterns_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return patterns_.size(); }
  [[nodiscard]] const std::vector<std::string>& patterns() const noexcept {
    return patterns_;
  }

 private:
  std::vector<std::string> patterns_;
};

}  // namespace myproxy::gsi
