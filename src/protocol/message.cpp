#include "protocol/message.hpp"

#include <charconv>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/strings.hpp"

namespace myproxy::protocol {

namespace {

void append_field(std::string& out, std::string_view key,
                  std::string_view value) {
  if (value.find('\n') != std::string_view::npos) {
    throw ProtocolError(
        fmt::format("field '{}' contains a newline", key));
  }
  out += key;
  out += '=';
  out += value;
  out += '\n';
}

std::int64_t parse_int(std::string_view key, std::string_view value) {
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw ProtocolError(
        fmt::format("field '{}' is not an integer: '{}'", key, value));
  }
  return out;
}

Command parse_command(std::string_view value) {
  const std::int64_t n = parse_int("COMMAND", value);
  if (n < 0 || n > static_cast<std::int64_t>(kLastCommand)) {
    throw ProtocolError(fmt::format("unknown command code {}", n));
  }
  return static_cast<Command>(n);
}

}  // namespace

std::string_view to_string(Command command) noexcept {
  switch (command) {
    case Command::kGet:
      return "GET";
    case Command::kPut:
      return "PUT";
    case Command::kInfo:
      return "INFO";
    case Command::kDestroy:
      return "DESTROY";
    case Command::kChangePassphrase:
      return "CHANGE_PASSPHRASE";
    case Command::kStore:
      return "STORE";
    case Command::kRetrieve:
      return "RETRIEVE";
    case Command::kList:
      return "LIST";
    case Command::kRenew:
      return "RENEW";
    case Command::kReplicaSync:
      return "REPLICA_SYNC";
    case Command::kStats:
      return "STATS";
    case Command::kClusterMap:
      return "CLUSTER_MAP";
    case Command::kMigrate:
      return "MIGRATE";
    case Command::kMigrateInstall:
      return "MIGRATE_INSTALL";
  }
  return "?";
}

std::string_view to_string(AuthMode mode) noexcept {
  switch (mode) {
    case AuthMode::kPassphrase:
      return "passphrase";
    case AuthMode::kOtp:
      return "otp";
  }
  return "?";
}

std::string Request::serialize() const {
  std::string out;
  append_field(out, "VERSION", kProtocolVersion);
  append_field(out, "COMMAND",
               std::to_string(static_cast<int>(command)));
  append_field(out, "USERNAME", username);
  append_field(out, "PASSPHRASE", passphrase);
  append_field(out, "AUTH_MODE", to_string(auth_mode));
  append_field(out, "LIFETIME", std::to_string(lifetime.count()));
  if (!credential_name.empty()) {
    append_field(out, "CRED_NAME", credential_name);
  }
  if (!new_passphrase.empty()) {
    append_field(out, "NEW_PHRASE", new_passphrase);
  }
  for (const auto& pattern : retriever_patterns) {
    append_field(out, "RETRIEVER", pattern);
  }
  for (const auto& pattern : renewer_patterns) {
    append_field(out, "RENEWER", pattern);
  }
  if (want_limited) append_field(out, "LIMITED", "1");
  if (restriction.has_value()) {
    append_field(out, "RESTRICTION", *restriction);
  }
  if (!task.empty()) append_field(out, "TASK", task);
  // SEQ doubles as the migration epoch on MIGRATE_INSTALL (both are u64
  // stream positions the receiver validates strictly).
  if (command == Command::kReplicaSync ||
      command == Command::kMigrateInstall) {
    append_field(out, "SEQ", std::to_string(sequence));
  }
  if (command == Command::kMigrate || command == Command::kMigrateInstall) {
    append_field(out, "SHARD", std::to_string(shard));
  }
  if (!target.empty()) append_field(out, "TARGET", target);
  return out;
}

Request Request::parse(std::string_view text) {
  Request request;
  bool have_version = false;
  bool have_command = false;
  for (const auto& raw_line : strings::split(text, '\n')) {
    if (raw_line.empty()) continue;
    const std::size_t eq = raw_line.find('=');
    if (eq == std::string::npos) {
      throw ProtocolError(
          fmt::format("malformed request line: '{}'", raw_line));
    }
    const std::string_view key = std::string_view(raw_line).substr(0, eq);
    const std::string_view value = std::string_view(raw_line).substr(eq + 1);
    if (key == "VERSION") {
      if (value != kProtocolVersion) {
        throw ProtocolError(
            fmt::format("unsupported protocol version '{}'", value));
      }
      have_version = true;
    } else if (key == "COMMAND") {
      request.command = parse_command(value);
      have_command = true;
    } else if (key == "USERNAME") {
      request.username = value;
    } else if (key == "PASSPHRASE") {
      request.passphrase = value;
    } else if (key == "AUTH_MODE") {
      if (value == "passphrase") {
        request.auth_mode = AuthMode::kPassphrase;
      } else if (value == "otp") {
        request.auth_mode = AuthMode::kOtp;
      } else {
        throw ProtocolError(fmt::format("unknown auth mode '{}'", value));
      }
    } else if (key == "LIFETIME") {
      const std::int64_t secs = parse_int(key, value);
      if (secs < 0) throw ProtocolError("negative lifetime");
      request.lifetime = Seconds(secs);
    } else if (key == "CRED_NAME") {
      request.credential_name = value;
    } else if (key == "NEW_PHRASE") {
      request.new_passphrase = value;
    } else if (key == "RETRIEVER") {
      request.retriever_patterns.emplace_back(value);
    } else if (key == "RENEWER") {
      request.renewer_patterns.emplace_back(value);
    } else if (key == "LIMITED") {
      request.want_limited = (value == "1");
    } else if (key == "RESTRICTION") {
      request.restriction = std::string(value);
    } else if (key == "TASK") {
      request.task = value;
    } else if (key == "SEQ") {
      const std::int64_t seq = parse_int(key, value);
      if (seq < 0) throw ProtocolError("negative sequence");
      request.sequence = static_cast<std::uint64_t>(seq);
    } else if (key == "SHARD") {
      const std::int64_t shard = parse_int(key, value);
      if (shard < 0 || shard > 0xffffffffLL) {
        throw ProtocolError("shard id out of range");
      }
      request.shard = static_cast<std::uint32_t>(shard);
    } else if (key == "TARGET") {
      request.target = value;
    } else {
      // Unknown keys are ignored for forward compatibility (§6.4 plans a
      // standardized protocol; old servers must tolerate new fields).
    }
  }
  if (!have_version) throw ProtocolError("request missing VERSION");
  if (!have_command) throw ProtocolError("request missing COMMAND");
  return request;
}

std::string Response::serialize() const {
  std::string out;
  append_field(out, "VERSION", kProtocolVersion);
  append_field(out, "RESPONSE", status == Status::kOk ? "0" : "1");
  if (status == Status::kError) append_field(out, "ERROR", error);
  for (const auto& [key, value] : fields) {
    for (const auto& part : strings::split(value, '\x1f')) {
      append_field(out, key, part);
    }
  }
  return out;
}

Response Response::parse(std::string_view text) {
  Response response;
  bool have_version = false;
  bool have_status = false;
  for (const auto& raw_line : strings::split(text, '\n')) {
    if (raw_line.empty()) continue;
    const std::size_t eq = raw_line.find('=');
    if (eq == std::string::npos) {
      throw ProtocolError(
          fmt::format("malformed response line: '{}'", raw_line));
    }
    const std::string key = raw_line.substr(0, eq);
    const std::string_view value = std::string_view(raw_line).substr(eq + 1);
    if (key == "VERSION") {
      if (value != kProtocolVersion) {
        throw ProtocolError(
            fmt::format("unsupported protocol version '{}'", value));
      }
      have_version = true;
    } else if (key == "RESPONSE") {
      if (value == "0") {
        response.status = Status::kOk;
      } else if (value == "1") {
        response.status = Status::kError;
      } else {
        throw ProtocolError(fmt::format("unknown response code '{}'", value));
      }
      have_status = true;
    } else if (key == "ERROR") {
      response.error = value;
    } else {
      auto [it, inserted] = response.fields.try_emplace(key, value);
      if (!inserted) {
        it->second += '\x1f';
        it->second += value;
      }
    }
  }
  if (!have_version) throw ProtocolError("response missing VERSION");
  if (!have_status) throw ProtocolError("response missing RESPONSE");
  return response;
}

}  // namespace myproxy::protocol
