// The MyProxy client-server wire protocol.
//
// Faithful in structure to the original prototype protocol the paper
// describes (§6.4 notes it "was quickly designed as a prototype"): newline-
// separated KEY=VALUE text messages exchanged over a mutually-authenticated
// channel, followed by raw CSR / certificate-chain messages for the
// delegation sub-protocol.
//
// Message flows (C = client, S = server; every flow starts with C's request
// and ends with S's response or an intermediate OK):
//   PUT (Figure 1, myproxy-init):
//     C: request{PUT,...}   S: ok   S: CSR   C: chain   S: response
//   GET (Figure 2, myproxy-get-delegation):
//     C: request{GET,...}   S: ok   C: CSR   S: chain
//   DESTROY / CHANGE_PASSPHRASE / INFO / LIST / STORE / RETRIEVE / RENEW:
//     simple request/response (STORE carries one extra credential-blob
//     message; RETRIEVE returns one; RENEW runs the GET delegation steps).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace myproxy::protocol {

inline constexpr std::string_view kProtocolVersion = "MYPROXYv2";

enum class Command {
  kGet = 0,               ///< retrieve a delegated proxy (Figure 2)
  kPut = 1,               ///< delegate a proxy to the repository (Figure 1)
  kInfo = 2,              ///< query stored-credential metadata
  kDestroy = 3,           ///< remove stored credentials (myproxy-destroy)
  kChangePassphrase = 4,  ///< rotate the retrieval pass phrase
  kStore = 5,             ///< store a long-term credential (§6.1)
  kRetrieve = 6,          ///< retrieve a stored long-term credential (§6.1)
  kList = 7,              ///< list wallet credentials (§6.2)
  kRenew = 8,             ///< refresh a job's proxy (§6.6, Condor-G support)
  kReplicaSync = 9,       ///< replica requests a snapshot / journal stream
  kStats = 10,            ///< dump server counters (admin tooling)
  kClusterMap = 11,       ///< fetch the versioned shard map (cluster routing)
  kMigrate = 12,          ///< admin: move a shard to another primary
  kMigrateInstall = 13,   ///< server-to-server: receive a migrating shard
};

/// Largest Command value; sizes per-op tables (latency histograms).
inline constexpr Command kLastCommand = Command::kMigrateInstall;

[[nodiscard]] std::string_view to_string(Command command) noexcept;

enum class AuthMode {
  kPassphrase,  ///< persistent pass phrase (the paper's baseline)
  kOtp,         ///< one-time password (§6.3, replay-attack fix)
};

[[nodiscard]] std::string_view to_string(AuthMode mode) noexcept;

struct Request {
  Command command = Command::kGet;
  std::string username;
  /// Pass phrase or OTP word, by auth_mode. (Held as std::string because it
  /// is serialized into the wire message; the channel is encrypted.)
  std::string passphrase;
  AuthMode auth_mode = AuthMode::kPassphrase;
  /// GET/RENEW: requested proxy lifetime. PUT: maximum lifetime the
  /// repository may delegate on the user's behalf (§4.1 retrieval
  /// restriction). 0 = server default.
  Seconds lifetime{0};
  /// Wallet slot name; empty selects the default credential (§6.2).
  std::string credential_name;
  /// CHANGE_PASSPHRASE: the replacement pass phrase.
  std::string new_passphrase;
  /// PUT/STORE: per-credential retriever/renewer DN patterns that narrow
  /// the server-wide ACLs (paper §4.1 "retrieval restrictions").
  std::vector<std::string> retriever_patterns;
  std::vector<std::string> renewer_patterns;
  /// GET: ask for a limited proxy; PUT: mark the stored credential so that
  /// every delegation from it is limited.
  bool want_limited = false;
  /// PUT/STORE: restriction policy text to embed in every proxy delegated
  /// from this credential (§6.5), e.g. "rights=file-read".
  std::optional<std::string> restriction;
  /// LIST/wallet: task tag used for credential selection (§6.2), matched
  /// against stored credentials' task tags.
  std::string task;
  /// REPLICA_SYNC: last journal sequence the replica has applied (0 = no
  /// usable state; the primary answers with a snapshot).
  std::uint64_t sequence = 0;
  /// MIGRATE / MIGRATE_INSTALL: the shard slot being moved.
  std::uint32_t shard = 0;
  /// MIGRATE: "<primary_port>" of the node receiving the shard.
  std::string target;

  [[nodiscard]] std::string serialize() const;
  static Request parse(std::string_view text);
};

struct Response {
  enum class Status { kOk, kError };

  Status status = Status::kOk;
  std::string error;  // populated when status == kError
  /// Auxiliary payload (INFO metadata, LIST entries, server banners).
  /// Multi-valued keys join with '\x1f' on parse.
  std::map<std::string, std::string> fields;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }

  [[nodiscard]] std::string serialize() const;
  static Response parse(std::string_view text);

  static Response make_ok() { return {}; }
  static Response make_error(std::string message) {
    Response r;
    r.status = Status::kError;
    r.error = std::move(message);
    return r;
  }
};

}  // namespace myproxy::protocol
