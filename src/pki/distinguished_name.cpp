#include "pki/distinguished_name.hpp"

#include <openssl/objects.h>
#include <openssl/x509.h>

#include <cstdio>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/strings.hpp"
#include "crypto/openssl_util.hpp"

namespace myproxy::pki {

namespace {

// Attribute names we accept in parsed DNs, mapped to OpenSSL NIDs.
int attribute_nid(std::string_view attr) {
  const int nid = OBJ_txt2nid(std::string(attr).c_str());
  if (nid == NID_undef) {
    throw ParseError(fmt::format("unknown DN attribute '{}'", attr));
  }
  return nid;
}

}  // namespace

DistinguishedName DistinguishedName::parse(std::string_view text) {
  if (text.empty()) return {};
  if (text.front() != '/') {
    throw ParseError(fmt::format("DN must start with '/': '{}'", text));
  }
  std::vector<Component> components;
  // Split on unescaped '/'; a backslash escapes the following character
  // (so values may contain '/' and '\').
  std::vector<std::string> fields;
  std::string current;
  for (std::size_t i = 1; i <= text.size(); ++i) {
    if (i == text.size()) {
      fields.push_back(current);
      current.clear();
    } else if (text[i] == '\\') {
      if (i + 1 >= text.size()) {
        throw ParseError(fmt::format("dangling escape in DN '{}'", text));
      }
      current += text[++i];
    } else if (text[i] == '/') {
      fields.push_back(current);
      current.clear();
    } else {
      current += text[i];
    }
  }
  for (const auto& field : fields) {
    if (field.empty()) {
      throw ParseError(fmt::format("empty DN component in '{}'", text));
    }
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ParseError(
          fmt::format("DN component '{}' is not attr=value", field));
    }
    std::string attr(strings::trim(std::string_view(field).substr(0, eq)));
    std::string value(field.substr(eq + 1));
    if (value.empty()) {
      throw ParseError(fmt::format("empty value in DN component '{}'", field));
    }
    (void)attribute_nid(attr);  // validate early
    components.emplace_back(std::move(attr), std::move(value));
  }
  return DistinguishedName(std::move(components));
}

DistinguishedName DistinguishedName::from_x509_name(const X509_NAME* name) {
  std::vector<Component> components;
  const int count = X509_NAME_entry_count(name);
  components.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const X509_NAME_ENTRY* entry =
        X509_NAME_get_entry(const_cast<X509_NAME*>(name), i);
    const ASN1_OBJECT* obj = X509_NAME_ENTRY_get_object(entry);
    const ASN1_STRING* data = X509_NAME_ENTRY_get_data(entry);
    // Prefer the short name ("C", "O", "CN") — the form GSI one-line DNs
    // use; fall back to the dotted OID for exotic attributes.
    char attr[80];
    const int nid = OBJ_obj2nid(obj);
    if (nid != NID_undef) {
      std::snprintf(attr, sizeof(attr), "%s", OBJ_nid2sn(nid));
    } else {
      OBJ_obj2txt(attr, sizeof(attr), obj, 1);
    }
    unsigned char* utf8 = nullptr;
    const int len = ASN1_STRING_to_UTF8(&utf8, data);
    if (len < 0) crypto::throw_openssl("ASN1_STRING_to_UTF8");
    std::string value(reinterpret_cast<char*>(utf8),
                      static_cast<std::size_t>(len));
    OPENSSL_free(utf8);
    components.emplace_back(attr, std::move(value));
  }
  return DistinguishedName(std::move(components));
}

std::string DistinguishedName::str() const {
  std::string out;
  for (const auto& [attr, value] : components_) {
    out += '/';
    out += attr;
    out += '=';
    // Escape separators and the escape character itself so str() parses
    // back losslessly.
    for (const char c : value) {
      if (c == '/' || c == '\\') out += '\\';
      out += c;
    }
  }
  return out;
}

X509_NAME* DistinguishedName::to_x509_name() const {
  X509_NAME* name = crypto::check_ptr(X509_NAME_new(), "X509_NAME_new");
  try {
    for (const auto& [attr, value] : components_) {
      crypto::check(
          X509_NAME_add_entry_by_NID(
              name, attribute_nid(attr), MBSTRING_UTF8,
              reinterpret_cast<const unsigned char*>(value.data()),
              static_cast<int>(value.size()), -1, 0),
          "X509_NAME_add_entry_by_NID");
    }
  } catch (...) {
    X509_NAME_free(name);
    throw;
  }
  return name;
}

std::string DistinguishedName::common_name() const {
  for (auto it = components_.rbegin(); it != components_.rend(); ++it) {
    if (it->first == "CN" || it->first == "commonName") return it->second;
  }
  return {};
}

DistinguishedName DistinguishedName::with_cn(std::string_view cn) const {
  std::vector<Component> components = components_;
  components.emplace_back("CN", std::string(cn));
  return DistinguishedName(std::move(components));
}

bool DistinguishedName::extends_by_one_cn(const DistinguishedName& base,
                                          std::string* cn_out) const {
  if (components_.size() != base.components_.size() + 1) return false;
  if (!std::equal(base.components_.begin(), base.components_.end(),
                  components_.begin())) {
    return false;
  }
  const Component& last = components_.back();
  if (last.first != "CN" && last.first != "commonName") return false;
  if (cn_out != nullptr) *cn_out = last.second;
  return true;
}

DistinguishedName DistinguishedName::parent() const {
  if (components_.empty()) return {};
  std::vector<Component> components(components_.begin(),
                                    components_.end() - 1);
  return DistinguishedName(std::move(components));
}

}  // namespace myproxy::pki
