#include "pki/certificate_builder.hpp"

#include <openssl/asn1.h>
#include <openssl/bn.h>
#include <openssl/evp.h>
#include <openssl/x509.h>
#include <openssl/x509v3.h>

#include "common/error.hpp"
#include "crypto/openssl_util.hpp"
#include "crypto/random.hpp"

namespace myproxy::pki {

namespace {

void set_asn1_time(ASN1_TIME* target, TimePoint t) {
  const std::time_t secs = static_cast<std::time_t>(to_unix(t));
  crypto::check_ptr(ASN1_TIME_set(target, secs), "ASN1_TIME_set");
}

void set_serial(X509* x, const std::string& hex) {
  BIGNUM* bn = nullptr;
  if (BN_hex2bn(&bn, hex.c_str()) == 0) {
    crypto::throw_openssl("BN_hex2bn(serial)");
  }
  ASN1_INTEGER* serial = BN_to_ASN1_INTEGER(bn, nullptr);
  BN_free(bn);
  crypto::check_ptr(serial, "BN_to_ASN1_INTEGER");
  const int rc = X509_set_serialNumber(x, serial);
  ASN1_INTEGER_free(serial);
  crypto::check(rc, "X509_set_serialNumber");
}

void add_basic_constraints(X509* x, bool is_ca) {
  BASIC_CONSTRAINTS* bc = BASIC_CONSTRAINTS_new();
  crypto::check_ptr(bc, "BASIC_CONSTRAINTS_new");
  bc->ca = is_ca ? 0xFF : 0;
  X509_EXTENSION* ext =
      X509V3_EXT_i2d(NID_basic_constraints, /*crit=*/1, bc);
  BASIC_CONSTRAINTS_free(bc);
  crypto::check_ptr(ext, "X509V3_EXT_i2d(basicConstraints)");
  const int rc = X509_add_ext(x, ext, -1);
  X509_EXTENSION_free(ext);
  crypto::check(rc, "X509_add_ext(basicConstraints)");
}

void add_policy_extension(X509* x, const RestrictionPolicy& policy) {
  const std::string text = policy.str();
  ASN1_OCTET_STRING* data = ASN1_OCTET_STRING_new();
  crypto::check_ptr(data, "ASN1_OCTET_STRING_new");
  crypto::check(
      ASN1_OCTET_STRING_set(
          data, reinterpret_cast<const unsigned char*>(text.data()),
          static_cast<int>(text.size())),
      "ASN1_OCTET_STRING_set");
  ASN1_OBJECT* obj = OBJ_nid2obj(proxy_policy_nid());
  X509_EXTENSION* ext =
      X509_EXTENSION_create_by_OBJ(nullptr, obj, /*crit=*/0, data);
  ASN1_OCTET_STRING_free(data);
  crypto::check_ptr(ext, "X509_EXTENSION_create_by_OBJ");
  const int rc = X509_add_ext(x, ext, -1);
  X509_EXTENSION_free(ext);
  crypto::check(rc, "X509_add_ext(proxy policy)");
}

}  // namespace

CertificateBuilder::CertificateBuilder() {
  const TimePoint start = now();
  not_before_ = start - kValiditySkew;
  not_after_ = start + kDefaultProxyLifetime;
}

CertificateBuilder& CertificateBuilder::subject(DistinguishedName dn) {
  subject_ = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::issuer(DistinguishedName dn) {
  issuer_ = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::public_key(
    const crypto::KeyPair& key) {
  public_key_ = key;
  return *this;
}

CertificateBuilder& CertificateBuilder::lifetime(Seconds lifetime) {
  if (lifetime <= Seconds(0)) {
    throw PolicyError("certificate lifetime must be positive");
  }
  const TimePoint start = now();
  not_before_ = start - kValiditySkew;
  not_after_ = start + lifetime;
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(TimePoint not_before,
                                                 TimePoint not_after) {
  if (not_after <= not_before) {
    throw PolicyError("certificate validity window is empty");
  }
  not_before_ = not_before;
  not_after_ = not_after;
  return *this;
}

CertificateBuilder& CertificateBuilder::serial_hex(std::string hex) {
  serial_hex_ = std::move(hex);
  return *this;
}

CertificateBuilder& CertificateBuilder::ca(bool is_ca) {
  is_ca_ = is_ca;
  return *this;
}

CertificateBuilder& CertificateBuilder::restriction(RestrictionPolicy policy) {
  restriction_ = std::move(policy);
  return *this;
}

Certificate CertificateBuilder::sign(const crypto::KeyPair& issuer_key) const {
  if (!subject_.has_value() || !issuer_.has_value()) {
    throw Error(ErrorCode::kInternal,
                "CertificateBuilder: subject and issuer are required");
  }
  if (!public_key_.valid()) {
    throw Error(ErrorCode::kInternal,
                "CertificateBuilder: public key is required");
  }
  if (!issuer_key.has_private()) {
    throw CryptoError("CertificateBuilder: issuer key lacks a private half");
  }

  crypto::X509Ptr x(crypto::check_ptr(X509_new(), "X509_new"));
  crypto::check(X509_set_version(x.get(), 2), "X509_set_version");  // v3

  set_serial(x.get(),
             serial_hex_.has_value() ? *serial_hex_ : crypto::random_hex(8));

  X509_NAME* subject_name = subject_->to_x509_name();
  int rc = X509_set_subject_name(x.get(), subject_name);
  X509_NAME_free(subject_name);
  crypto::check(rc, "X509_set_subject_name");

  X509_NAME* issuer_name = issuer_->to_x509_name();
  rc = X509_set_issuer_name(x.get(), issuer_name);
  X509_NAME_free(issuer_name);
  crypto::check(rc, "X509_set_issuer_name");

  set_asn1_time(X509_getm_notBefore(x.get()), not_before_);
  set_asn1_time(X509_getm_notAfter(x.get()), not_after_);

  crypto::check(X509_set_pubkey(x.get(), public_key_.native()),
                "X509_set_pubkey");

  add_basic_constraints(x.get(), is_ca_);
  if (restriction_.has_value()) {
    add_policy_extension(x.get(), *restriction_);
  }

  if (X509_sign(x.get(), issuer_key.native(), EVP_sha256()) <= 0) {
    crypto::throw_openssl("X509_sign");
  }
  return Certificate::adopt(x.release());
}

}  // namespace myproxy::pki
