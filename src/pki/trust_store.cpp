#include "pki/trust_store.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/format.hpp"

namespace myproxy::pki {

namespace {

void check_validity_window(const Certificate& cert, std::string_view role) {
  const TimePoint t = now();
  if (t < cert.not_before()) {
    throw VerificationError(
        fmt::format("{} certificate {} is not yet valid", role,
                    cert.subject().str()));
  }
  if (t > cert.not_after()) {
    throw ExpiredError(fmt::format("{} certificate {} has expired", role,
                                   cert.subject().str()));
  }
}

}  // namespace

void TrustStore::add_root(Certificate root) {
  if (!root.is_ca()) {
    throw PolicyError(
        fmt::format("refusing non-CA certificate {} as a trust root",
                    root.subject().str()));
  }
  const std::scoped_lock lock(state_->mutex);
  auto& roots = state_->roots;
  if (std::find(roots.begin(), roots.end(), root) == roots.end()) {
    roots.push_back(std::move(root));
  }
}

void TrustStore::add_crl(const SignedRevocationList& crl) {
  const std::optional<Certificate> root = find_root_by_dn(crl.list.issuer);
  if (!root.has_value()) {
    throw NotFoundError(
        fmt::format("no trusted root matches CRL issuer {}",
                    crl.list.issuer.str()));
  }
  if (!crl.verify(*root)) {
    throw VerificationError("CRL signature verification failed");
  }
  const std::scoped_lock lock(state_->mutex);
  auto [it, inserted] =
      state_->crls.try_emplace(crl.list.issuer.str(), crl.list);
  if (!inserted && it->second.issued_at <= crl.list.issued_at) {
    it->second = crl.list;
  }
}

std::size_t TrustStore::root_count() const {
  const std::scoped_lock lock(state_->mutex);
  return state_->roots.size();
}

std::optional<Certificate> TrustStore::find_root_by_dn(
    const DistinguishedName& dn) const {
  const std::scoped_lock lock(state_->mutex);
  for (const auto& root : state_->roots) {
    if (root.subject() == dn) return root;
  }
  return std::nullopt;
}

bool TrustStore::is_trusted_root(const Certificate& cert) const {
  const std::scoped_lock lock(state_->mutex);
  return std::find(state_->roots.begin(), state_->roots.end(), cert) !=
         state_->roots.end();
}

bool TrustStore::is_revoked_locked(const DistinguishedName& issuer,
                                   const std::string& serial) const {
  const std::scoped_lock lock(state_->mutex);
  const auto it = state_->crls.find(issuer.str());
  return it != state_->crls.end() && it->second.contains(serial);
}

VerifiedIdentity TrustStore::verify(std::span<const Certificate> chain,
                                    const VerifyOptions& options) const {
  if (chain.empty()) {
    throw VerificationError("empty certificate chain");
  }

  VerifiedIdentity out;
  out.expires_at = chain.front().not_after();

  // --- Phase 1: walk proxy links from the leaf. ---------------------------
  std::size_t i = 0;
  while (i < chain.size() && chain[i].is_proxy()) {
    const Certificate& proxy = chain[i];
    check_validity_window(proxy, "proxy");
    if (i + 1 >= chain.size()) {
      throw VerificationError(
          "chain ends at a proxy certificate with no issuer");
    }
    const Certificate& issuer = chain[i + 1];
    if (!(proxy.issuer() == issuer.subject())) {
      throw VerificationError(fmt::format(
          "proxy issuer DN '{}' does not match next certificate subject '{}'",
          proxy.issuer().str(), issuer.subject().str()));
    }
    if (issuer.is_ca()) {
      // A CA key must never sign proxies; that would let a CA impersonate
      // users silently.
      throw VerificationError("proxy certificate issued by a CA certificate");
    }
    if (!proxy.signed_by(issuer)) {
      throw VerificationError(fmt::format(
          "proxy certificate '{}' signature verification failed",
          proxy.subject().str()));
    }
    if (options.enforce_lifetime_nesting &&
        proxy.not_after() > issuer.not_after()) {
      throw VerificationError(fmt::format(
          "proxy '{}' outlives its issuer (lifetime nesting violated)",
          proxy.subject().str()));
    }
    if (proxy.proxy_type() == ProxyType::kLimited) out.limited = true;
    if (const auto policy_text = proxy.restriction_policy()) {
      out.policy = compose(out.policy, RestrictionPolicy::parse(*policy_text));
    }
    out.expires_at = std::min(out.expires_at, proxy.not_after());
    ++out.proxy_depth;
    if (options.max_proxy_depth != 0 &&
        out.proxy_depth > options.max_proxy_depth) {
      throw VerificationError(
          fmt::format("delegation chain deeper than {} links",
                      options.max_proxy_depth));
    }
    ++i;
  }

  if (i >= chain.size()) {
    throw VerificationError("certificate chain has no end-entity certificate");
  }

  // --- Phase 2: end-entity certificate. -----------------------------------
  const Certificate& eec = chain[i];
  check_validity_window(eec, "end-entity");
  if (eec.is_ca()) {
    throw VerificationError(
        "end-entity position holds a CA certificate; identities must be "
        "end-entity certificates");
  }
  out.identity = eec.subject();
  out.end_entity = eec;

  // A restriction policy on the EEC itself also applies (a site may issue
  // restricted service certs).
  if (const auto policy_text = eec.restriction_policy()) {
    out.policy = compose(out.policy, RestrictionPolicy::parse(*policy_text));
  }

  // --- Phase 3: CA path from the EEC to a trusted root. -------------------
  const Certificate* current = &eec;
  std::size_t j = i;
  while (true) {
    if (options.check_revocation &&
        is_revoked_locked(current->issuer(), current->serial_hex())) {
      throw AuthorizationError(
          fmt::format("certificate {} (serial {}) has been revoked",
                      current->subject().str(), current->serial_hex()));
    }

    // Find the issuer: next element of the chain, or an installed root.
    const Certificate* issuer = nullptr;
    std::optional<Certificate> root_holder;
    if (j + 1 < chain.size()) {
      issuer = &chain[j + 1];
    } else {
      root_holder = find_root_by_dn(current->issuer());
      if (!root_holder.has_value()) {
        throw VerificationError(fmt::format(
            "no trusted root for issuer '{}'", current->issuer().str()));
      }
      issuer = &*root_holder;
    }

    if (!issuer->is_ca()) {
      throw VerificationError(fmt::format(
          "issuer certificate '{}' is not a CA", issuer->subject().str()));
    }
    if (!(current->issuer() == issuer->subject())) {
      throw VerificationError(fmt::format(
          "issuer DN '{}' does not match certificate subject '{}'",
          current->issuer().str(), issuer->subject().str()));
    }
    if (!current->signed_by(*issuer)) {
      throw VerificationError(
          fmt::format("certificate '{}' signature verification failed",
                      current->subject().str()));
    }
    check_validity_window(*issuer, "CA");

    if (is_trusted_root(*issuer)) break;  // anchored

    // Intermediate CA supplied in the chain: keep walking upward.
    if (j + 1 >= chain.size()) {
      // Issuer came from the store but is not a trusted root — impossible
      // (the store only holds roots); defensive guard.
      throw VerificationError("verification did not reach a trusted root");
    }
    ++j;
    current = &chain[j];
  }

  return out;
}

}  // namespace myproxy::pki
