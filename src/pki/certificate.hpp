// X.509 certificates. Value-semantic wrapper over OpenSSL X509 with the
// GSI-specific views MyProxy needs: proxy classification by subject CN
// (legacy GSI proxies, paper §2.3) and the restricted-proxy policy extension
// (paper §6.5, draft-ietf-pkix-impersonation).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "crypto/key_pair.hpp"
#include "pki/distinguished_name.hpp"

using X509 = struct x509_st;

namespace myproxy::pki {

/// How a certificate participates in a GSI identity chain.
enum class ProxyType {
  kEndEntity,  ///< long-term credential (or CA) — not a proxy
  kFull,       ///< "CN=proxy": full impersonation rights
  kLimited,    ///< "CN=limited proxy": job submission must be refused
};

[[nodiscard]] std::string_view to_string(ProxyType type) noexcept;

class Certificate {
 public:
  Certificate() = default;

  /// First certificate in a PEM blob. Throws ParseError/CryptoError.
  static Certificate from_pem(std::string_view pem);

  /// Every certificate in a PEM blob, in order of appearance.
  static std::vector<Certificate> chain_from_pem(std::string_view pem);

  /// Concatenate `certs` into one PEM blob.
  static std::string chain_to_pem(const std::vector<Certificate>& certs);

  [[nodiscard]] bool valid() const noexcept { return x509_ != nullptr; }

  [[nodiscard]] std::string to_pem() const;

  [[nodiscard]] DistinguishedName subject() const;
  [[nodiscard]] DistinguishedName issuer() const;

  [[nodiscard]] TimePoint not_before() const;
  [[nodiscard]] TimePoint not_after() const;

  /// Remaining lifetime relative to the library clock; <= 0 when expired.
  [[nodiscard]] Seconds remaining_lifetime() const;
  [[nodiscard]] bool expired() const { return remaining_lifetime() <= Seconds(0); }

  /// Serial number as lower-case hex.
  [[nodiscard]] std::string serial_hex() const;

  /// Public half of the subject key (never contains a private key).
  [[nodiscard]] crypto::KeyPair public_key() const;

  /// True if this certificate's signature verifies under `issuer`'s key.
  /// Checks only the signature — not validity windows or DN chaining.
  [[nodiscard]] bool signed_by(const Certificate& issuer) const;

  /// SHA-256 over the DER encoding, hex. Stable identity for audit logs.
  [[nodiscard]] std::string fingerprint() const;

  /// Proxy classification from the subject's final CN component relative to
  /// the issuer DN (legacy GSI rule). kEndEntity when the subject does not
  /// extend the issuer by CN=proxy / CN=limited proxy.
  [[nodiscard]] ProxyType proxy_type() const;
  [[nodiscard]] bool is_proxy() const {
    return proxy_type() != ProxyType::kEndEntity;
  }

  /// Restriction policy text carried in the proxy-policy extension (§6.5),
  /// if present.
  [[nodiscard]] std::optional<std::string> restriction_policy() const;

  /// True if basicConstraints marks this certificate as a CA.
  [[nodiscard]] bool is_ca() const;

  [[nodiscard]] X509* native() const noexcept { return x509_.get(); }

  /// Adopt an X509 (takes one reference).
  static Certificate adopt(X509* x509);

  /// Same DER bytes?
  friend bool operator==(const Certificate& a, const Certificate& b);

 private:
  std::shared_ptr<X509> x509_;
};

}  // namespace myproxy::pki
