// Restricted-proxy policy extension (paper §6.5).
//
// The 2001 drafts (GGF draft-ggf-x509-res-delegation, IETF
// draft-ietf-pkix-impersonation, later RFC 3820 ProxyCertInfo) let a user
// embed fine-grained restrictions in a delegated proxy so that a stolen
// proxy — even one stolen from the MyProxy repository itself — can only be
// used for the listed rights. We carry the policy as an ASN.1 OCTET STRING
// in a dedicated X.509v3 extension.
//
// Policy language (deliberately simple, matching the draft's spirit):
//   "rights=<r1>,<r2>,..."   e.g. "rights=file-read,job-submit"
// An empty rights list means "no rights" (a crippled proxy). Absence of the
// extension means an unrestricted proxy. Restrictions intersect along a
// delegation chain: a right survives only if every restricted link grants it.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace myproxy::pki {

/// Dotted OID of the policy extension (private enterprise arc).
inline constexpr std::string_view kProxyPolicyOid = "1.3.6.1.4.1.3536.1.222";

/// Parsed restriction policy.
struct RestrictionPolicy {
  std::vector<std::string> rights;  // sorted, deduplicated

  /// Serialize to the on-wire "rights=a,b,c" form.
  [[nodiscard]] std::string str() const;

  /// Parse "rights=a,b,c"; throws ParseError on malformed text.
  static RestrictionPolicy parse(std::string_view text);

  /// Does this policy grant `right`?
  [[nodiscard]] bool allows(std::string_view right) const;

  /// Intersection of two policies (chain composition rule).
  [[nodiscard]] RestrictionPolicy intersect(
      const RestrictionPolicy& other) const;

  friend bool operator==(const RestrictionPolicy&,
                         const RestrictionPolicy&) = default;
};

/// Effective rights along a chain: nullopt = unrestricted.
using EffectivePolicy = std::optional<RestrictionPolicy>;

/// Combine a link's policy into the chain's effective policy.
[[nodiscard]] EffectivePolicy compose(EffectivePolicy chain,
                                      const EffectivePolicy& link);

/// Registers the extension OID with OpenSSL (idempotent, thread-safe) and
/// returns its NID.
int proxy_policy_nid();

}  // namespace myproxy::pki
