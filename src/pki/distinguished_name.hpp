// Distinguished Names. Every Grid entity is identified by a globally unique
// DN (paper §2.1); GSI tools render DNs in the one-line OpenSSL "oneline"
// style: "/C=US/O=Grid/OU=People/CN=Alice".
//
// Proxy certificates extend the issuer's DN with a final "CN=proxy" or
// "CN=limited proxy" component (§2.3), so DN component order matters and is
// preserved here.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Forward declaration to keep OpenSSL out of the public header.
using X509_NAME = struct X509_name_st;

namespace myproxy::pki {

/// CN value marking a full-rights proxy certificate.
inline constexpr std::string_view kProxyCn = "proxy";
/// CN value marking a limited proxy certificate (GRAM refuses these).
inline constexpr std::string_view kLimitedProxyCn = "limited proxy";

class DistinguishedName {
 public:
  using Component = std::pair<std::string, std::string>;  // {attr, value}

  DistinguishedName() = default;
  explicit DistinguishedName(std::vector<Component> components)
      : components_(std::move(components)) {}

  /// Parse "/C=US/O=Grid/CN=alice". Throws ParseError on malformed input.
  /// Escaped slashes ("\/") inside values are supported.
  static DistinguishedName parse(std::string_view text);

  /// Build from an OpenSSL X509_NAME (borrowed, not consumed).
  static DistinguishedName from_x509_name(const X509_NAME* name);

  /// Render in GSI one-line form.
  [[nodiscard]] std::string str() const;

  /// Fresh X509_NAME the caller owns (used when building certificates).
  [[nodiscard]] X509_NAME* to_x509_name() const;

  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return components_;
  }
  [[nodiscard]] bool empty() const noexcept { return components_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return components_.size();
  }

  /// Value of the most specific (last) CN component, or "" if none.
  [[nodiscard]] std::string common_name() const;

  /// This DN plus one more CN component (how proxy subjects are formed).
  [[nodiscard]] DistinguishedName with_cn(std::string_view cn) const;

  /// True if this DN is exactly `base` plus one trailing CN component;
  /// if so, `*cn_out` receives that CN's value.
  [[nodiscard]] bool extends_by_one_cn(const DistinguishedName& base,
                                       std::string* cn_out = nullptr) const;

  /// DN with the final component removed; empty DN if already empty.
  [[nodiscard]] DistinguishedName parent() const;

  friend bool operator==(const DistinguishedName& a,
                         const DistinguishedName& b) {
    return a.components_ == b.components_;
  }
  friend auto operator<=>(const DistinguishedName& a,
                          const DistinguishedName& b) {
    return a.components_ <=> b.components_;
  }

 private:
  std::vector<Component> components_;
};

}  // namespace myproxy::pki
