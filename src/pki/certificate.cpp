#include "pki/certificate.hpp"

#include <openssl/asn1.h>
#include <openssl/bn.h>
#include <openssl/evp.h>
#include <openssl/pem.h>
#include <openssl/x509.h>
#include <openssl/x509v3.h>

#include <cctype>
#include <ctime>

#include "common/encoding.hpp"
#include "common/error.hpp"
#include "crypto/digest.hpp"
#include "crypto/openssl_util.hpp"
#include "pki/proxy_policy.hpp"

namespace myproxy::pki {

namespace {

std::shared_ptr<X509> wrap(X509* x) {
  return std::shared_ptr<X509>(x, [](X509* p) { X509_free(p); });
}

X509* require(const std::shared_ptr<X509>& x) {
  if (x == nullptr) throw Error(ErrorCode::kInternal, "empty Certificate");
  return x.get();
}

TimePoint asn1_time_to_timepoint(const ASN1_TIME* t) {
  std::tm tm{};
  crypto::check(ASN1_TIME_to_tm(t, &tm), "ASN1_TIME_to_tm");
  const std::time_t secs = timegm(&tm);
  return from_unix(static_cast<std::int64_t>(secs));
}

std::string der_encode(X509* x) {
  unsigned char* der = nullptr;
  const int len = i2d_X509(x, &der);
  if (len < 0) crypto::throw_openssl("i2d_X509");
  std::string out(reinterpret_cast<char*>(der),
                  static_cast<std::size_t>(len));
  OPENSSL_free(der);
  return out;
}

}  // namespace

std::string_view to_string(ProxyType type) noexcept {
  switch (type) {
    case ProxyType::kEndEntity:
      return "end-entity";
    case ProxyType::kFull:
      return "proxy";
    case ProxyType::kLimited:
      return "limited proxy";
  }
  return "?";
}

Certificate Certificate::from_pem(std::string_view pem) {
  crypto::BioPtr bio = crypto::memory_bio(pem);
  X509* x = PEM_read_bio_X509(bio.get(), nullptr, nullptr, nullptr);
  if (x == nullptr) {
    (void)crypto::drain_error_queue();
    throw ParseError("no certificate found in PEM input");
  }
  Certificate out;
  out.x509_ = wrap(x);
  return out;
}

std::vector<Certificate> Certificate::chain_from_pem(std::string_view pem) {
  crypto::BioPtr bio = crypto::memory_bio(pem);
  std::vector<Certificate> chain;
  while (true) {
    X509* x = PEM_read_bio_X509(bio.get(), nullptr, nullptr, nullptr);
    if (x == nullptr) {
      (void)crypto::drain_error_queue();
      break;
    }
    Certificate cert;
    cert.x509_ = wrap(x);
    chain.push_back(std::move(cert));
  }
  if (chain.empty()) {
    throw ParseError("no certificates found in PEM input");
  }
  return chain;
}

std::string Certificate::chain_to_pem(const std::vector<Certificate>& certs) {
  std::string out;
  for (const auto& cert : certs) out += cert.to_pem();
  return out;
}

std::string Certificate::to_pem() const {
  crypto::BioPtr bio = crypto::memory_bio();
  crypto::check(PEM_write_bio_X509(bio.get(), require(x509_)),
                "PEM_write_bio_X509");
  return crypto::bio_to_string(bio.get());
}

DistinguishedName Certificate::subject() const {
  return DistinguishedName::from_x509_name(
      X509_get_subject_name(require(x509_)));
}

DistinguishedName Certificate::issuer() const {
  return DistinguishedName::from_x509_name(
      X509_get_issuer_name(require(x509_)));
}

TimePoint Certificate::not_before() const {
  return asn1_time_to_timepoint(X509_get0_notBefore(require(x509_)));
}

TimePoint Certificate::not_after() const {
  return asn1_time_to_timepoint(X509_get0_notAfter(require(x509_)));
}

Seconds Certificate::remaining_lifetime() const {
  return std::chrono::duration_cast<Seconds>(not_after() - now());
}

std::string Certificate::serial_hex() const {
  const ASN1_INTEGER* serial = X509_get0_serialNumber(require(x509_));
  BIGNUM* bn = ASN1_INTEGER_to_BN(serial, nullptr);
  crypto::check_ptr(bn, "ASN1_INTEGER_to_BN");
  char* hex = BN_bn2hex(bn);
  BN_free(bn);
  crypto::check_ptr(hex, "BN_bn2hex");
  std::string out(hex);
  OPENSSL_free(hex);
  for (auto& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

crypto::KeyPair Certificate::public_key() const {
  EVP_PKEY* key = X509_get_pubkey(require(x509_));  // +1 reference
  crypto::check_ptr(key, "X509_get_pubkey");
  return crypto::KeyPair::adopt(key, /*has_private=*/false);
}

bool Certificate::signed_by(const Certificate& issuer) const {
  EVP_PKEY* key = X509_get_pubkey(require(issuer.x509_));
  crypto::check_ptr(key, "X509_get_pubkey");
  const int rc = X509_verify(require(x509_), key);
  EVP_PKEY_free(key);
  if (rc < 0) (void)crypto::drain_error_queue();
  return rc == 1;
}

std::string Certificate::fingerprint() const {
  return crypto::digest_hex(crypto::HashAlgorithm::kSha256,
                            der_encode(require(x509_)));
}

ProxyType Certificate::proxy_type() const {
  const DistinguishedName subject_dn = subject();
  const DistinguishedName issuer_dn = issuer();
  std::string cn;
  if (!subject_dn.extends_by_one_cn(issuer_dn, &cn)) {
    return ProxyType::kEndEntity;
  }
  if (cn == kProxyCn) return ProxyType::kFull;
  if (cn == kLimitedProxyCn) return ProxyType::kLimited;
  return ProxyType::kEndEntity;
}

std::optional<std::string> Certificate::restriction_policy() const {
  X509* x = require(x509_);
  const int index = X509_get_ext_by_NID(x, proxy_policy_nid(), -1);
  if (index < 0) return std::nullopt;
  X509_EXTENSION* ext = X509_get_ext(x, index);
  const ASN1_OCTET_STRING* data = X509_EXTENSION_get_data(ext);
  return std::string(reinterpret_cast<const char*>(data->data),
                     static_cast<std::size_t>(data->length));
}

bool Certificate::is_ca() const {
  return X509_check_ca(require(x509_)) == 1;
}

Certificate Certificate::adopt(X509* x509) {
  Certificate out;
  out.x509_ = wrap(crypto::check_ptr(x509, "Certificate::adopt(null)"));
  return out;
}

bool operator==(const Certificate& a, const Certificate& b) {
  if (a.x509_ == nullptr || b.x509_ == nullptr) {
    return a.x509_ == b.x509_;
  }
  return X509_cmp(a.x509_.get(), b.x509_.get()) == 0;
}

}  // namespace myproxy::pki
