// Fluent X.509 certificate builder used by the CA (issuing EECs) and by the
// GSI proxy factory (signing proxy certificates). Centralizing construction
// keeps the invariants — UTC validity, serial uniqueness, extension
// encoding — in one place.
#pragma once

#include <optional>
#include <string>

#include "common/clock.hpp"
#include "crypto/key_pair.hpp"
#include "pki/certificate.hpp"
#include "pki/distinguished_name.hpp"
#include "pki/proxy_policy.hpp"

namespace myproxy::pki {

class CertificateBuilder {
 public:
  CertificateBuilder();

  CertificateBuilder& subject(DistinguishedName dn);
  CertificateBuilder& issuer(DistinguishedName dn);
  CertificateBuilder& public_key(const crypto::KeyPair& key);

  /// Validity window. `not_before` defaults to now() minus a 5-minute skew
  /// allowance; `lifetime` is measured from now().
  CertificateBuilder& lifetime(Seconds lifetime);
  CertificateBuilder& validity(TimePoint not_before, TimePoint not_after);

  /// Explicit serial (hex); a fresh 64-bit random serial is used otherwise.
  CertificateBuilder& serial_hex(std::string hex);

  /// Mark as a CA certificate (basicConstraints CA:TRUE, critical).
  CertificateBuilder& ca(bool is_ca);

  /// Attach a restricted-proxy policy extension (paper §6.5).
  CertificateBuilder& restriction(RestrictionPolicy policy);

  /// Sign with `issuer_key` and return the certificate.
  /// Throws if subject, issuer or public key are unset.
  [[nodiscard]] Certificate sign(const crypto::KeyPair& issuer_key) const;

 private:
  std::optional<DistinguishedName> subject_;
  std::optional<DistinguishedName> issuer_;
  crypto::KeyPair public_key_;
  TimePoint not_before_;
  TimePoint not_after_;
  std::optional<std::string> serial_hex_;
  bool is_ca_ = false;
  std::optional<RestrictionPolicy> restriction_;
};

/// Allowed clock skew between hosts: certificates are backdated by this much.
inline constexpr Seconds kValiditySkew{300};

}  // namespace myproxy::pki
