// Trust store and GSI-aware certificate-chain verification.
//
// This is the Grid resource's view of authentication (paper §2.1–2.4): a
// peer presents a chain [leaf, ..., EEC, (intermediates)] where the leaf may
// be a (chained) proxy certificate. Verification walks proxy links under the
// legacy GSI rules — each proxy subject must be its issuer's DN plus one
// CN=proxy / CN=limited proxy component and must be signed by the issuer's
// key — then validates the end-entity certificate against the trusted CA
// roots, honoring revocation. The authenticated Grid identity is the EEC's
// DN, no matter how deep the delegation chain (§2.4: delegation can be
// chained).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/clock.hpp"
#include "pki/certificate.hpp"
#include "pki/certificate_authority.hpp"
#include "pki/proxy_policy.hpp"

namespace myproxy::pki {

struct VerifyOptions {
  /// Require each proxy's notAfter to nest inside its issuer's notAfter.
  /// The paper's lifetime containment argument (§2.3, §4.3) depends on this.
  bool enforce_lifetime_nesting = true;

  /// Check every CA-issued certificate against installed CRLs.
  bool check_revocation = true;

  /// Upper bound on delegation-chain depth (0 = unlimited). Guards against
  /// maliciously deep chains.
  std::size_t max_proxy_depth = 32;
};

/// Result of a successful chain verification.
struct VerifiedIdentity {
  /// The Grid identity: DN of the end-entity certificate.
  DistinguishedName identity;

  /// End-entity certificate itself (for gridmap lookups, renewal, audit).
  Certificate end_entity;

  /// Number of proxy links between the leaf and the EEC (0 = EEC itself).
  std::size_t proxy_depth = 0;

  /// True if any link was a limited proxy — job submission must be refused
  /// (GSI limited-proxy semantics).
  bool limited = false;

  /// Effective restriction policy (intersection along the chain);
  /// nullopt = unrestricted (paper §6.5).
  EffectivePolicy policy;

  /// Earliest notAfter along the proxy links — when this identity stops
  /// being usable.
  TimePoint expires_at;
};

class TrustStore {
 public:
  TrustStore() : state_(std::make_shared<State>()) {}

  /// Install a trusted CA root certificate.
  void add_root(Certificate root);

  /// Install a signed CRL. The signature is checked against the installed
  /// root with the matching subject DN; throws VerificationError on a bad
  /// signature and NotFoundError if no matching root exists. A newer CRL
  /// from the same issuer replaces the older one.
  void add_crl(const SignedRevocationList& crl);

  [[nodiscard]] std::size_t root_count() const;

  /// Verify `chain` (leaf first) and return the authenticated identity.
  /// Throws VerificationError / ExpiredError / AuthorizationError with a
  /// reason on failure.
  [[nodiscard]] VerifiedIdentity verify(std::span<const Certificate> chain,
                                        const VerifyOptions& options = {}) const;

 private:
  [[nodiscard]] std::optional<Certificate> find_root_by_dn(
      const DistinguishedName& dn) const;
  [[nodiscard]] bool is_trusted_root(const Certificate& cert) const;
  [[nodiscard]] bool is_revoked_locked(const DistinguishedName& issuer,
                                       const std::string& serial) const;

  // Shared state so TrustStore copies are cheap views of one root set
  // (server threads each hold a handle).
  struct State {
    mutable std::mutex mutex;
    std::vector<Certificate> roots;
    // issuer DN string -> latest CRL from that issuer
    std::map<std::string, RevocationList> crls;
  };
  std::shared_ptr<State> state_;
};

}  // namespace myproxy::pki
