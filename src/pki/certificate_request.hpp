// PKCS#10 certificate signing requests. Delegation (paper §2.4) works by
// the *receiver* generating a fresh key pair and sending a CSR; the sender
// signs it with the credential being delegated. The private key never
// crosses the wire.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "crypto/key_pair.hpp"
#include "pki/distinguished_name.hpp"

using X509_REQ = struct X509_req_st;

namespace myproxy::pki {

class CertificateRequest {
 public:
  CertificateRequest() = default;

  /// Build a CSR for `subject`, self-signed with `key` (proof of possession).
  static CertificateRequest create(const DistinguishedName& subject,
                                   const crypto::KeyPair& key);

  static CertificateRequest from_pem(std::string_view pem);

  [[nodiscard]] std::string to_pem() const;

  [[nodiscard]] DistinguishedName subject() const;

  /// Public key the requester proved possession of.
  [[nodiscard]] crypto::KeyPair public_key() const;

  /// Verify the CSR's self-signature (proof of possession of the key).
  [[nodiscard]] bool verify() const;

  [[nodiscard]] bool valid() const noexcept { return req_ != nullptr; }

  [[nodiscard]] X509_REQ* native() const noexcept { return req_.get(); }

 private:
  std::shared_ptr<X509_REQ> req_;
};

}  // namespace myproxy::pki
