// In-process Certificate Authority. The paper assumes CA-issued long-term
// credentials as given infrastructure (§2.1: "a digital signature from a
// trusted party known as a Certificate Authority"); this CA stands in for
// the production Globus CA so the whole PKI can run on one host.
//
// Also provides a lightweight *signed revocation list*: §2.1 names
// revocation ("until the theft was discovered and the certificate revoked by
// the CA") as the PKI backstop that bounded-lifetime credentials complement.
#pragma once

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "crypto/key_pair.hpp"
#include "pki/certificate.hpp"
#include "pki/certificate_request.hpp"
#include "pki/distinguished_name.hpp"

namespace myproxy::pki {

/// Signed list of revoked serial numbers.
struct RevocationList {
  DistinguishedName issuer;
  TimePoint issued_at;
  std::vector<std::string> serials;  // lower-case hex, sorted

  /// Canonical text form (also the byte string that gets signed).
  [[nodiscard]] std::string to_text() const;
  static RevocationList parse(std::string_view text);

  [[nodiscard]] bool contains(std::string_view serial_hex) const;
};

/// RevocationList plus the CA signature over its text form.
struct SignedRevocationList {
  RevocationList list;
  std::vector<std::uint8_t> signature;

  /// Verify the signature with the CA certificate's public key and check
  /// that the list's issuer DN matches the CA subject.
  [[nodiscard]] bool verify(const Certificate& ca_certificate) const;
};

class CertificateAuthority {
 public:
  /// Create a fresh self-signed CA.
  static CertificateAuthority create(
      const DistinguishedName& name,
      const crypto::KeySpec& key_spec = crypto::KeySpec::rsa(2048),
      Seconds lifetime = Seconds(10L * 365 * 24 * 3600));

  /// The CA certificate (distribute to trust stores).
  [[nodiscard]] const Certificate& certificate() const { return cert_; }

  /// Issue an end-entity certificate for a CSR after verifying its
  /// proof-of-possession signature. Lifetime is clamped to the CA policy
  /// maximum and the CA's own remaining lifetime.
  [[nodiscard]] Certificate issue(const CertificateRequest& csr,
                                  Seconds lifetime);

  /// Issue directly for a known public key (used for host/service certs).
  [[nodiscard]] Certificate issue(const DistinguishedName& subject,
                                  const crypto::KeyPair& public_key,
                                  Seconds lifetime);

  /// Maximum end-entity lifetime this CA will grant (default: 1 year —
  /// "typically this lifetime is on the order of years", §2.1).
  void set_max_lifetime(Seconds max) { max_lifetime_ = max; }
  [[nodiscard]] Seconds max_lifetime() const { return max_lifetime_; }

  /// Revoke by certificate or serial. Idempotent.
  void revoke(const Certificate& cert);
  void revoke_serial(std::string serial_hex);

  [[nodiscard]] bool is_revoked(std::string_view serial_hex) const;

  /// Snapshot of the revocation state, signed with the CA key.
  [[nodiscard]] SignedRevocationList signed_crl() const;

  /// Count of certificates issued so far (stats/tests).
  [[nodiscard]] std::uint64_t issued_count() const;

  /// Persist the CA (certificate + pass-phrase-encrypted key + revocation
  /// state) so grid-cert-setup can extend an existing PKI across runs.
  [[nodiscard]] std::string to_pem(std::string_view pass_phrase) const;

  /// Restore a CA persisted with to_pem. Throws on a wrong pass phrase.
  static CertificateAuthority from_pem(std::string_view pem,
                                       std::string_view pass_phrase);

 private:
  CertificateAuthority() : state_(std::make_unique<State>()) {}

  // Mutable bookkeeping lives behind a pointer so the CA stays movable.
  struct State {
    mutable std::mutex mutex;
    std::set<std::string, std::less<>> revoked;
    std::uint64_t issued = 0;
  };

  Certificate cert_;
  crypto::KeyPair key_;
  Seconds max_lifetime_{365L * 24 * 3600};
  std::unique_ptr<State> state_;
};

}  // namespace myproxy::pki
