#include "pki/certificate_authority.hpp"

#include <algorithm>

#include "common/encoding.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/strings.hpp"
#include "pki/certificate_builder.hpp"

namespace myproxy::pki {

std::string RevocationList::to_text() const {
  std::string out = "myproxy-crl-v1\n";
  out += fmt::format("issuer {}\n", issuer.str());
  out += fmt::format("issued_at {}\n", to_unix(issued_at));
  for (const auto& serial : serials) {
    out += fmt::format("revoked {}\n", serial);
  }
  return out;
}

RevocationList RevocationList::parse(std::string_view text) {
  const auto lines = strings::split(text, '\n');
  if (lines.empty() || strings::trim(lines[0]) != "myproxy-crl-v1") {
    throw ParseError("revocation list missing version header");
  }
  RevocationList out;
  bool have_issuer = false;
  bool have_time = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = strings::trim(lines[i]);
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      throw ParseError(fmt::format("malformed CRL line: '{}'", line));
    }
    const std::string_view key = line.substr(0, space);
    const std::string_view value = strings::trim(line.substr(space + 1));
    if (key == "issuer") {
      out.issuer = DistinguishedName::parse(value);
      have_issuer = true;
    } else if (key == "issued_at") {
      const auto issued = strings::parse_i64(value);
      if (!issued.has_value() || *issued < 0) {
        throw ParseError("CRL issued_at is not a timestamp");
      }
      out.issued_at = from_unix(*issued);
      have_time = true;
    } else if (key == "revoked") {
      out.serials.emplace_back(value);
    } else {
      throw ParseError(fmt::format("unknown CRL field '{}'", key));
    }
  }
  if (!have_issuer || !have_time) {
    throw ParseError("CRL missing issuer or issued_at");
  }
  std::sort(out.serials.begin(), out.serials.end());
  return out;
}

bool RevocationList::contains(std::string_view serial_hex) const {
  return std::binary_search(serials.begin(), serials.end(), serial_hex);
}

bool SignedRevocationList::verify(const Certificate& ca_certificate) const {
  if (!(list.issuer == ca_certificate.subject())) return false;
  return crypto::verify(ca_certificate.public_key(), list.to_text(),
                        signature);
}

CertificateAuthority CertificateAuthority::create(
    const DistinguishedName& name, const crypto::KeySpec& key_spec,
    Seconds lifetime) {
  CertificateAuthority ca;
  ca.key_ = crypto::KeyPair::generate(key_spec);
  ca.cert_ = CertificateBuilder()
                 .subject(name)
                 .issuer(name)
                 .public_key(ca.key_)
                 .lifetime(lifetime)
                 .ca(true)
                 .sign(ca.key_);
  return ca;
}

Certificate CertificateAuthority::issue(const CertificateRequest& csr,
                                        Seconds lifetime) {
  if (!csr.verify()) {
    throw VerificationError(
        "CSR proof-of-possession signature is invalid");
  }
  return issue(csr.subject(), csr.public_key(), lifetime);
}

Certificate CertificateAuthority::issue(const DistinguishedName& subject,
                                        const crypto::KeyPair& public_key,
                                        Seconds lifetime) {
  if (subject.empty()) {
    throw PolicyError("refusing to issue a certificate with an empty DN");
  }
  if (subject == cert_.subject()) {
    throw PolicyError("refusing to issue an end-entity cert with the CA DN");
  }
  // Reject subjects that would parse as proxies of some other subject we
  // issued — CN=proxy is reserved for the GSI proxy mechanism.
  const std::string cn = subject.common_name();
  if (cn == kProxyCn || cn == kLimitedProxyCn) {
    throw PolicyError("subject CN collides with the proxy naming convention");
  }
  Seconds granted = std::min(lifetime, max_lifetime_);
  const Seconds ca_remaining = cert_.remaining_lifetime();
  granted = std::min(granted, ca_remaining);
  if (granted <= Seconds(0)) {
    throw ExpiredError("CA certificate has expired");
  }
  const Certificate cert = CertificateBuilder()
                               .subject(subject)
                               .issuer(cert_.subject())
                               .public_key(public_key)
                               .lifetime(granted)
                               .ca(false)
                               .sign(key_);
  {
    const std::scoped_lock lock(state_->mutex);
    ++state_->issued;
  }
  return cert;
}

void CertificateAuthority::revoke(const Certificate& cert) {
  revoke_serial(cert.serial_hex());
}

void CertificateAuthority::revoke_serial(std::string serial_hex) {
  const std::scoped_lock lock(state_->mutex);
  state_->revoked.insert(std::move(serial_hex));
}

bool CertificateAuthority::is_revoked(std::string_view serial_hex) const {
  const std::scoped_lock lock(state_->mutex);
  return state_->revoked.find(serial_hex) != state_->revoked.end();
}

SignedRevocationList CertificateAuthority::signed_crl() const {
  SignedRevocationList out;
  out.list.issuer = cert_.subject();
  out.list.issued_at = now();
  {
    const std::scoped_lock lock(state_->mutex);
    out.list.serials.assign(state_->revoked.begin(), state_->revoked.end());
  }
  out.signature = crypto::sign(key_, out.list.to_text());
  return out;
}

std::uint64_t CertificateAuthority::issued_count() const {
  const std::scoped_lock lock(state_->mutex);
  return state_->issued;
}

std::string CertificateAuthority::to_pem(std::string_view pass_phrase) const {
  // Certificate PEM + encrypted key PEM + one "revoked <serial>" line per
  // revocation (PEM parsers skip non-PEM lines, so the blob stays loadable
  // by generic tooling).
  std::string out = cert_.to_pem();
  out += key_.private_pem_encrypted(pass_phrase);
  const std::scoped_lock lock(state_->mutex);
  for (const auto& serial : state_->revoked) {
    out += fmt::format("revoked {}\n", serial);
  }
  return out;
}

CertificateAuthority CertificateAuthority::from_pem(
    std::string_view pem, std::string_view pass_phrase) {
  CertificateAuthority ca;
  ca.cert_ = Certificate::from_pem(pem);
  ca.key_ = crypto::KeyPair::from_private_pem(pem, pass_phrase);
  if (!ca.cert_.public_key().same_public_key(ca.key_)) {
    throw VerificationError("CA certificate does not match the stored key");
  }
  if (!ca.cert_.is_ca()) {
    throw VerificationError("stored certificate is not a CA certificate");
  }
  for (const auto& line : strings::split(pem, '\n')) {
    const std::string_view trimmed = strings::trim(line);
    constexpr std::string_view kPrefix = "revoked ";
    if (trimmed.starts_with(kPrefix)) {
      ca.state_->revoked.insert(std::string(trimmed.substr(kPrefix.size())));
    }
  }
  return ca;
}

}  // namespace myproxy::pki
