#include "pki/certificate_request.hpp"

#include <openssl/evp.h>
#include <openssl/pem.h>
#include <openssl/x509.h>

#include "common/error.hpp"
#include "crypto/openssl_util.hpp"

namespace myproxy::pki {

namespace {

std::shared_ptr<X509_REQ> wrap(X509_REQ* r) {
  return std::shared_ptr<X509_REQ>(r, [](X509_REQ* p) { X509_REQ_free(p); });
}

X509_REQ* require(const std::shared_ptr<X509_REQ>& r) {
  if (r == nullptr) {
    throw Error(ErrorCode::kInternal, "empty CertificateRequest");
  }
  return r.get();
}

}  // namespace

CertificateRequest CertificateRequest::create(
    const DistinguishedName& subject, const crypto::KeyPair& key) {
  if (!key.has_private()) {
    throw CryptoError("CSR creation requires a private key");
  }
  crypto::X509ReqPtr req(
      crypto::check_ptr(X509_REQ_new(), "X509_REQ_new"));
  crypto::check(X509_REQ_set_version(req.get(), 0), "X509_REQ_set_version");

  X509_NAME* name = subject.to_x509_name();
  const int rc = X509_REQ_set_subject_name(req.get(), name);
  X509_NAME_free(name);
  crypto::check(rc, "X509_REQ_set_subject_name");

  crypto::check(X509_REQ_set_pubkey(req.get(), key.native()),
                "X509_REQ_set_pubkey");
  if (X509_REQ_sign(req.get(), key.native(), EVP_sha256()) <= 0) {
    crypto::throw_openssl("X509_REQ_sign");
  }

  CertificateRequest out;
  out.req_ = wrap(req.release());
  return out;
}

CertificateRequest CertificateRequest::from_pem(std::string_view pem) {
  crypto::BioPtr bio = crypto::memory_bio(pem);
  X509_REQ* req = PEM_read_bio_X509_REQ(bio.get(), nullptr, nullptr, nullptr);
  if (req == nullptr) {
    (void)crypto::drain_error_queue();
    throw ParseError("no certificate request found in PEM input");
  }
  CertificateRequest out;
  out.req_ = wrap(req);
  return out;
}

std::string CertificateRequest::to_pem() const {
  crypto::BioPtr bio = crypto::memory_bio();
  crypto::check(PEM_write_bio_X509_REQ(bio.get(), require(req_)),
                "PEM_write_bio_X509_REQ");
  return crypto::bio_to_string(bio.get());
}

DistinguishedName CertificateRequest::subject() const {
  return DistinguishedName::from_x509_name(
      X509_REQ_get_subject_name(require(req_)));
}

crypto::KeyPair CertificateRequest::public_key() const {
  EVP_PKEY* key = X509_REQ_get_pubkey(require(req_));  // +1 reference
  crypto::check_ptr(key, "X509_REQ_get_pubkey");
  return crypto::KeyPair::adopt(key, /*has_private=*/false);
}

bool CertificateRequest::verify() const {
  EVP_PKEY* key = X509_REQ_get_pubkey(require(req_));
  crypto::check_ptr(key, "X509_REQ_get_pubkey");
  const int rc = X509_REQ_verify(require(req_), key);
  EVP_PKEY_free(key);
  if (rc < 0) (void)crypto::drain_error_queue();
  return rc == 1;
}

}  // namespace myproxy::pki
