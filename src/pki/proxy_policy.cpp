#include "pki/proxy_policy.hpp"

#include <openssl/objects.h>

#include <algorithm>
#include <mutex>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/strings.hpp"
#include "crypto/openssl_util.hpp"

namespace myproxy::pki {

std::string RestrictionPolicy::str() const {
  return "rights=" + strings::join(rights, ",");
}

RestrictionPolicy RestrictionPolicy::parse(std::string_view text) {
  const std::string_view trimmed = strings::trim(text);
  constexpr std::string_view kPrefix = "rights=";
  if (!trimmed.starts_with(kPrefix)) {
    throw ParseError(
        fmt::format("restriction policy must start with 'rights=': '{}'",
                    trimmed));
  }
  RestrictionPolicy policy;
  policy.rights =
      strings::split_trimmed(trimmed.substr(kPrefix.size()), ',');
  for (const auto& right : policy.rights) {
    if (right.find('=') != std::string::npos ||
        right.find(';') != std::string::npos) {
      throw ParseError(fmt::format("malformed right '{}'", right));
    }
  }
  std::sort(policy.rights.begin(), policy.rights.end());
  policy.rights.erase(std::unique(policy.rights.begin(), policy.rights.end()),
                      policy.rights.end());
  return policy;
}

bool RestrictionPolicy::allows(std::string_view right) const {
  return std::binary_search(rights.begin(), rights.end(), right);
}

RestrictionPolicy RestrictionPolicy::intersect(
    const RestrictionPolicy& other) const {
  RestrictionPolicy out;
  std::set_intersection(rights.begin(), rights.end(), other.rights.begin(),
                        other.rights.end(), std::back_inserter(out.rights));
  return out;
}

EffectivePolicy compose(EffectivePolicy chain, const EffectivePolicy& link) {
  if (!link.has_value()) return chain;          // unrestricted link
  if (!chain.has_value()) return link;          // first restriction
  return chain->intersect(*link);               // restrictions intersect
}

int proxy_policy_nid() {
  static std::once_flag once;
  static int nid = NID_undef;
  std::call_once(once, [] {
    const std::string oid(kProxyPolicyOid);
    nid = OBJ_txt2nid(oid.c_str());
    if (nid == NID_undef) {
      nid = OBJ_create(oid.c_str(), "myproxyProxyPolicy",
                       "MyProxy restricted proxy policy");
    }
    if (nid == NID_undef) crypto::throw_openssl("OBJ_create(proxy policy)");
  });
  return nid;
}

}  // namespace myproxy::pki
