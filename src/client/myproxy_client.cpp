#include "client/myproxy_client.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "net/socket.hpp"

namespace myproxy::client {

namespace {

constexpr std::string_view kLogComponent = "client";

using protocol::AuthMode;
using protocol::Command;
using protocol::Request;
using protocol::Response;

std::int64_t field_int(const Response& response, const std::string& key) {
  const auto it = response.fields.find(key);
  if (it == response.fields.end()) {
    throw ProtocolError(fmt::format("response missing field '{}'", key));
  }
  const auto value = strings::parse_i64(it->second);
  if (!value.has_value()) {
    throw ProtocolError(fmt::format("response field '{}' is not a number: '{}'",
                                    key, it->second));
  }
  return *value;
}

}  // namespace

MyProxyClient::MyProxyClient(gsi::Credential credential,
                             pki::TrustStore trust_store, std::uint16_t port,
                             RetryPolicy retry_policy)
    : MyProxyClient(std::move(credential), std::move(trust_store),
                    std::vector<std::uint16_t>{port}, retry_policy) {}

MyProxyClient::MyProxyClient(gsi::Credential credential,
                             pki::TrustStore trust_store,
                             std::vector<std::uint16_t> ports,
                             RetryPolicy retry_policy)
    : credential_(std::move(credential)),
      trust_store_(std::move(trust_store)),
      tls_context_(tls::TlsContext::make(credential_)),
      ports_(std::move(ports)),
      retry_policy_(retry_policy),
      jitter_rng_(std::random_device{}()) {
  if (ports_.empty()) {
    throw Error(ErrorCode::kConfig,
                "MyProxyClient requires at least one endpoint");
  }
}

std::vector<std::uint16_t> MyProxyClient::candidates(
    OpKind kind, std::string_view username) const {
  if (cluster_routing_ && cluster_map_.has_value() &&
      !cluster_map_->empty() && !username.empty()) {
    const cluster::ShardNode& owner = cluster_map_->owner(username);
    if (kind == OpKind::kWrite) return {owner.primary};
    std::vector<std::uint16_t> order = owner.replicas;
    order.push_back(owner.primary);
    return order;
  }
  if (kind == OpKind::kWrite) return {ports_.front()};
  if (ports_.size() == 1) return ports_;
  std::vector<std::uint16_t> order(ports_.begin() + 1, ports_.end());
  order.push_back(ports_.front());
  return order;
}

template <typename Fn>
auto MyProxyClient::run_op(OpKind kind, std::string_view username, Fn&& fn)
    -> decltype(fn(std::uint16_t{})) {
  const int hop_budget = std::max(0, retry_policy_.max_redirect_hops);
  int hops = 0;
  // A redirect names one definite destination; it overrides the computed
  // candidate order for the next pass.
  std::optional<std::uint16_t> forced;
  for (;;) {
    const std::vector<std::uint16_t> order =
        forced.has_value() ? std::vector<std::uint16_t>{*forced}
                           : candidates(kind, username);
    forced.reset();
    try {
      for (std::size_t i = 0; i < order.size(); ++i) {
        const bool last = i + 1 == order.size();
        try {
          return run_with_busy_retry(fn, order[i]);
        } catch (const ReplicaRedirect& e) {
          // A write landed on a replica: handled by the outer hop loop,
          // which follows the named primary. A read landed on a server
          // that insists on the primary (e.g. an OTP retrieval): fall
          // through to the next endpoint — the primary is always last in
          // a read order.
          if (kind == OpKind::kWrite) throw;
          if (last) throw;
          log::warn(kLogComponent,
                    "endpoint {} redirected ({}); failing over", order[i],
                    e.what());
        } catch (const IoError& e) {
          // The endpoint is unreachable even after connect()'s own
          // retries, or died mid-operation. Reads are side-effect free, so
          // re-running the whole operation elsewhere is safe.
          if (last) throw;
          log::warn(kLogComponent, "endpoint {} failed ({}); failing over",
                    order[i], e.what());
        }
      }
      throw IoError("no repository endpoint configured");  // unreachable
    } catch (const WrongShardRedirect& e) {
      // Our map is stale (or absent): the server named the shard's owner
      // and its epoch. Refresh the map and re-route; servers chasing a
      // live migration can hand us around, so the hop budget bounds it.
      if (++hops > hop_budget) {
        throw RedirectLoop(fmt::format(
            "redirect budget ({}) exhausted chasing shard ownership: {}",
            hop_budget, e.what()));
      }
      ++wrong_shard_redirects_;
      log::warn(kLogComponent,
                "wrong shard for '{}' (owner primary {}, epoch {}); "
                "refreshing cluster map",
                username, e.primary_hint(), e.epoch());
      try {
        (void)fetch_cluster_map_from(e.primary_hint());
      } catch (const std::exception&) {
        // Could not refresh a map from anyone; the redirect's direct hint
        // is still actionable on its own.
        if (e.primary_hint() == 0) throw;
        forced = e.primary_hint();
      }
    } catch (const ReplicaRedirect& e) {
      // A write landed on a replica (the configured "primary" endpoint was
      // demoted, or the list simply starts with a replica). The refusal
      // names the real primary — follow it rather than hard-failing on
      // information we were just handed, within the shared hop budget.
      if (kind != OpKind::kWrite) throw;
      const std::uint16_t hint = e.primary_port();
      if (hint == 0) throw;
      if (++hops > hop_budget) {
        throw RedirectLoop(fmt::format(
            "redirect budget ({}) exhausted chasing the primary: {}",
            hop_budget, e.what()));
      }
      log::warn(kLogComponent,
                "endpoint is a replica; following redirect to primary {}",
                hint);
      forced = hint;
    }
  }
}

template <typename Fn>
auto MyProxyClient::run_with_busy_retry(Fn&& fn, std::uint16_t port)
    -> decltype(fn(std::uint16_t{})) {
  const int attempts = std::max(1, retry_policy_.max_attempts);
  for (int attempt = 1;; ++attempt) {
    try {
      return fn(port);
    } catch (const ServerBusy& e) {
      if (attempt >= attempts) throw;
      // An admission shed happens before the command runs, so retrying the
      // whole operation cannot replay a half-finished command — even for
      // writes. Respect the server's pacing hint but never sleep less than
      // our own (jittered) backoff, so shed clients do not stampede back.
      const Millis delay =
          std::max(backoff_for_attempt(attempt), e.retry_after());
      log::warn(kLogComponent,
                "repository on port {} is busy (attempt {}/{}); retrying "
                "in {} ms",
                port, attempt, attempts, delay.count());
      std::this_thread::sleep_for(delay);
    }
  }
}

std::unique_ptr<tls::TlsChannel> MyProxyClient::connect_once(
    std::uint16_t port) {
  const tls::TlsSession* resume = nullptr;
  if (session_resumption_) {
    const auto it = cached_sessions_.find(port);
    if (it != cached_sessions_.end() && it->second.valid()) {
      resume = &it->second;
    }
  }
  auto channel = tls::TlsChannel::connect(
      tls_context_, net::tcp_connect(port, retry_policy_.connect_timeout),
      retry_policy_.io_timeout, resume);
  if (channel->resumed()) {
    // Abbreviated handshake. The server proved possession of the secret
    // negotiated on a connection whose chain we fully verified (sessions
    // are only cached after a verified, successful operation), so the §5.1
    // server-authentication guarantee carries over; there is no fresh
    // chain to re-verify. server_identity_ still holds that identity.
    ++resumed_connections_;
    log::debug(kLogComponent, "resumed session with repository '{}'",
               server_identity_ ? server_identity_->str() : "?");
    return channel;
  }
  ++full_connections_;
  // Mutual authentication (§5.1): verify the repository's credentials so a
  // fake server cannot harvest pass phrases.
  const pki::VerifiedIdentity server =
      trust_store_.verify(channel->peer_chain());
  server_identity_ = server.identity;
  log::debug(kLogComponent, "connected to repository '{}'",
             server.identity.str());
  return channel;
}

Millis MyProxyClient::backoff_for_attempt(int attempt) {
  double delay = static_cast<double>(retry_policy_.initial_backoff.count());
  for (int i = 1; i < attempt; ++i) delay *= retry_policy_.backoff_multiplier;
  delay = std::min(delay,
                   static_cast<double>(retry_policy_.max_backoff.count()));
  if (retry_policy_.jitter > 0.0) {
    std::uniform_real_distribution<double> scale(
        1.0 - retry_policy_.jitter, 1.0 + retry_policy_.jitter);
    delay *= scale(jitter_rng_);
  }
  return Millis(std::max<std::int64_t>(0, std::llround(delay)));
}

std::unique_ptr<tls::TlsChannel> MyProxyClient::connect(std::uint16_t port) {
  const int attempts = std::max(1, retry_policy_.max_attempts);
  std::string last_error;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    try {
      return connect_once(port);
    } catch (const IoError& e) {
      // Transient transport failure (connection refused, deadline expired,
      // handshake torn down). Verification/authentication failures are NOT
      // IoError and propagate immediately — retrying cannot fix a server
      // that fails mutual authentication.
      last_error = e.what();
      // A stale cached session must not wedge every retry: fall back to a
      // full handshake on the next attempt.
      cached_sessions_.erase(port);
      if (attempt == attempts) break;
      const Millis delay = backoff_for_attempt(attempt);
      log::warn(kLogComponent,
                "connection attempt {}/{} failed ({}); retrying in {} ms",
                attempt, attempts, last_error, delay.count());
      std::this_thread::sleep_for(delay);
    }
  }
  throw IoError(fmt::format(
      "could not reach repository on port {} after {} attempt(s): {}", port,
      attempts, last_error));
}

void MyProxyClient::cache_session(std::uint16_t port,
                                  tls::TlsChannel& channel) {
  if (!session_resumption_) return;
  // TLS 1.3 tickets ride with (or after) the server's first response, so by
  // the end of a successful operation the session is resumable. Keep the
  // previous session if this connection yielded no resumable one (e.g. a
  // resumed connection whose ticket is still good).
  tls::TlsSession session = channel.session();
  if (session.valid()) cached_sessions_[port] = std::move(session);
}

gsi::DelegationRequest MyProxyClient::start_delegation(
    const crypto::KeySpec& spec) {
  if (key_pool_ != nullptr && key_pool_->spec() == spec) {
    return gsi::begin_delegation(key_pool_->acquire());
  }
  return gsi::begin_delegation(spec);
}

namespace {

/// Strict port parse for redirect hints; an unparseable or out-of-range
/// hint degrades to 0 (redirect with no usable target), never to a
/// truncated port.
std::uint16_t parse_port_hint(const Response& response,
                              const std::string& key) {
  const auto it = response.fields.find(key);
  if (it == response.fields.end()) return 0;
  const auto hint = strings::parse_u64(it->second);
  if (hint.has_value() && *hint > 0 && *hint <= 0xffff) {
    return static_cast<std::uint16_t>(*hint);
  }
  return 0;
}

}  // namespace

void MyProxyClient::check_response(const Response& response,
                                   Command command) {
  if (response.ok()) return;
  const std::string message = fmt::format("server refused {}: {}",
                                          to_string(command), response.error);
  const auto busy = response.fields.find("BUSY");
  if (busy != response.fields.end()) {
    // Admission shed with a pacing hint. The hint is clamped so a
    // misbehaving server cannot park the client for minutes.
    Millis retry_after{0};
    const auto hint = response.fields.find("RETRY_AFTER_MS");
    if (hint != response.fields.end()) {
      const auto parsed = strings::parse_u64(hint->second);
      if (parsed.has_value() && *parsed <= 60'000) {
        retry_after = Millis(static_cast<std::int64_t>(*parsed));
      }
    }
    throw ServerBusy(retry_after, message);
  }
  if (response.fields.count("WRONG_SHARD") != 0) {
    // Must be checked before PRIMARY: a wrong-shard refusal also carries a
    // PRIMARY field (the owning node's primary), and treating it as a
    // replica redirect would lose the epoch and skip the map refresh.
    std::uint64_t epoch = 0;
    std::uint32_t shard = 0;
    const auto epoch_field = response.fields.find("EPOCH");
    if (epoch_field != response.fields.end()) {
      epoch = strings::parse_u64(epoch_field->second).value_or(0);
    }
    const auto shard_field = response.fields.find("SHARD");
    if (shard_field != response.fields.end()) {
      const auto parsed = strings::parse_u64(shard_field->second);
      if (parsed.has_value() && *parsed <= 0xffffffffULL) {
        shard = static_cast<std::uint32_t>(*parsed);
      }
    }
    throw WrongShardRedirect(epoch, shard,
                             parse_port_hint(response, "PRIMARY"), message);
  }
  if (response.fields.count("PRIMARY") != 0) {
    throw ReplicaRedirect(parse_port_hint(response, "PRIMARY"), message);
  }
  throw Error(ErrorCode::kProtocol, message);
}

Response MyProxyClient::transact(tls::TlsChannel& channel,
                                 const Request& request) {
  channel.send(request.serialize());
  const Response response = Response::parse(channel.receive());
  check_response(response, request.command);
  return response;
}

cluster::ClusterMap MyProxyClient::fetch_cluster_map() {
  return fetch_cluster_map_from(0);
}

cluster::ClusterMap MyProxyClient::fetch_cluster_map_from(
    std::uint16_t preferred) {
  // Candidate order: the node that just redirected us (it certainly holds
  // a map, and a fresher one than ours), then every shard primary the
  // current map names, then the configured endpoints.
  std::vector<std::uint16_t> order;
  const auto add = [&order](std::uint16_t port) {
    if (port != 0 &&
        std::find(order.begin(), order.end(), port) == order.end()) {
      order.push_back(port);
    }
  };
  add(preferred);
  if (cluster_map_.has_value()) {
    for (std::uint32_t shard = 0; shard < cluster_map_->shard_count();
         ++shard) {
      add(cluster_map_->node(shard).primary);
    }
  }
  for (const std::uint16_t port : ports_) add(port);

  std::string last_error = "no endpoints configured";
  for (const std::uint16_t port : order) {
    try {
      auto channel = connect(port);
      Request request;
      request.command = Command::kClusterMap;
      (void)transact(*channel, request);
      // The serialized map follows the response as its own frame (response
      // fields cannot carry newlines); parse() verifies its checksum.
      cluster::ClusterMap map =
          cluster::ClusterMap::parse(channel->receive());
      cache_session(port, *channel);
      // Epochs only advance: never let a lagging node roll our map back —
      // re-routing by a newer map is at worst another bounded redirect.
      if (!cluster_map_.has_value() || cluster_map_->empty() ||
          map.epoch() >= cluster_map_->epoch()) {
        cluster_map_ = std::move(map);
      }
      cluster_routing_ = true;
      ++map_refreshes_;
      return *cluster_map_;
    } catch (const Error& e) {
      // Unreachable node, or one without clustering enabled — try the next.
      last_error = e.what();
    }
  }
  throw IoError(
      fmt::format("could not fetch a cluster map from any endpoint "
                  "(last error: {})",
                  last_error));
}

std::map<std::string, std::string> MyProxyClient::cluster_migrate(
    std::uint32_t shard, std::uint16_t target_port) {
  // MIGRATE must run on the shard's current owner; route there when a map
  // is installed, else trust the caller pointed us at the owner.
  std::uint16_t owner = ports_.front();
  if (cluster_map_.has_value() && !cluster_map_->empty() &&
      shard < cluster_map_->shard_count()) {
    owner = cluster_map_->node(shard).primary;
  }
  auto channel = connect(owner);
  Request request;
  request.command = Command::kMigrate;
  request.shard = shard;
  request.target = std::to_string(target_port);
  const Response response = transact(*channel, request);
  cache_session(owner, *channel);
  return response.fields;
}

void MyProxyClient::put(std::string_view username,
                        std::string_view pass_phrase,
                        const gsi::Credential& source,
                        const PutOptions& options) {
  run_op(OpKind::kWrite, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kPut;
    request.username = std::string(username);
    request.passphrase = std::string(pass_phrase);
    request.auth_mode =
        options.use_otp ? AuthMode::kOtp : AuthMode::kPassphrase;
    request.lifetime = options.max_delegation_lifetime;
    request.credential_name = options.credential_name;
    request.retriever_patterns = options.retriever_patterns;
    request.renewer_patterns = options.renewer_patterns;
    request.want_limited = options.always_limited;
    request.restriction = options.restriction;
    request.task = options.task_tags;
    (void)transact(*channel, request);

    // Server sends its CSR; we sign a proxy of `source` for it (Figure 1).
    const std::string csr_pem = channel->receive();
    gsi::ProxyOptions proxy_options;
    proxy_options.lifetime = options.stored_lifetime;
    const std::string chain_pem =
        gsi::delegate_credential(source, csr_pem, proxy_options);
    channel->send(chain_pem);

    // The refusal can arrive on this second response too (a migration
    // fence or cutover raced the delegation exchange): map it to the same
    // typed errors so the redirect/busy machinery retries the whole put.
    check_response(Response::parse(channel->receive()), request.command);
    cache_session(port, *channel);
    log::info(kLogComponent, "delegated credential to repository as '{}'",
              username);
    return 0;
  });
}

gsi::Credential MyProxyClient::get(std::string_view username,
                                   std::string_view pass_phrase,
                                   const GetOptions& options) {
  // An OTP retrieval consumes a chain word on the server — a write in
  // disguise — and must reach the primary.
  const OpKind kind = options.otp ? OpKind::kWrite : OpKind::kRead;
  return run_op(kind, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kGet;
    request.username = std::string(username);
    request.passphrase = std::string(pass_phrase);
    request.auth_mode = options.otp ? AuthMode::kOtp : AuthMode::kPassphrase;
    request.lifetime = options.lifetime;
    request.credential_name = options.credential_name;
    request.want_limited = options.want_limited;
    (void)transact(*channel, request);

    // We are the delegation receiver (Figure 2): fresh key, CSR out,
    // chain in.
    gsi::DelegationRequest delegation = start_delegation(options.key_spec);
    channel->send(delegation.csr_pem);
    const std::string chain_pem = channel->receive();
    gsi::Credential delegated =
        gsi::complete_delegation(std::move(delegation.key), chain_pem);
    cache_session(port, *channel);
    log::info(kLogComponent, "received delegation for '{}' (expires {})",
              username, format_utc(delegated.not_after()));
    return delegated;
  });
}

gsi::Credential MyProxyClient::renew(std::string_view username,
                                     const GetOptions& options) {
  return run_op(OpKind::kWrite, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kRenew;
    request.username = std::string(username);
    request.lifetime = options.lifetime;
    request.credential_name = options.credential_name;
    request.want_limited = options.want_limited;
    (void)transact(*channel, request);

    gsi::DelegationRequest delegation = start_delegation(options.key_spec);
    channel->send(delegation.csr_pem);
    const std::string chain_pem = channel->receive();
    gsi::Credential delegated =
        gsi::complete_delegation(std::move(delegation.key), chain_pem);
    cache_session(port, *channel);
    return delegated;
  });
}

void MyProxyClient::destroy(std::string_view username,
                            std::string_view name) {
  run_op(OpKind::kWrite, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kDestroy;
    request.username = std::string(username);
    request.credential_name = std::string(name);
    (void)transact(*channel, request);
    cache_session(port, *channel);
    return 0;
  });
}

StoredCredentialInfo MyProxyClient::info(std::string_view username,
                                         std::string_view name) {
  return run_op(OpKind::kRead, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kInfo;
    request.username = std::string(username);
    request.credential_name = std::string(name);
    const Response response = transact(*channel, request);
    cache_session(port, *channel);

    StoredCredentialInfo out;
    const auto owner = response.fields.find("OWNER");
    if (owner != response.fields.end()) out.owner_dn = owner->second;
    out.not_after = from_unix(field_int(response, "NOT_AFTER"));
    out.created_at = from_unix(field_int(response, "CREATED_AT"));
    out.max_delegation_lifetime =
        Seconds(field_int(response, "MAX_LIFETIME"));
    const auto sealing = response.fields.find("SEALING");
    if (sealing != response.fields.end()) out.sealing = sealing->second;
    out.limited = response.fields.count("LIMITED") != 0;
    const auto restriction = response.fields.find("RESTRICTION");
    if (restriction != response.fields.end()) {
      out.restriction = restriction->second;
    }
    const auto otp = response.fields.find("OTP_REMAINING");
    if (otp != response.fields.end()) {
      const auto remaining = strings::parse_u64(otp->second);
      if (!remaining.has_value() || *remaining > 0xffffffffULL) {
        throw ProtocolError(fmt::format(
            "malformed OTP_REMAINING field: '{}'", otp->second));
      }
      out.otp_remaining = static_cast<std::uint32_t>(*remaining);
    }
    return out;
  });
}

std::vector<std::string> MyProxyClient::list(std::string_view username) {
  return run_op(OpKind::kRead, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kList;
    request.username = std::string(username);
    const Response response = transact(*channel, request);
    cache_session(port, *channel);
    const auto names = response.fields.find("NAMES");
    if (names == response.fields.end()) return std::vector<std::string>{};
    return strings::split(names->second, '\x1f');
  });
}

std::string MyProxyClient::select_for_task(std::string_view username,
                                           std::string_view task) {
  return run_op(OpKind::kRead, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kList;
    request.username = std::string(username);
    request.task = std::string(task);
    const Response response = transact(*channel, request);
    cache_session(port, *channel);
    const auto selected = response.fields.find("SELECTED");
    if (selected == response.fields.end()) {
      throw ProtocolError("server response missing SELECTED field");
    }
    return selected->second;
  });
}

void MyProxyClient::change_passphrase(std::string_view username,
                                      std::string_view old_phrase,
                                      std::string_view new_phrase,
                                      std::string_view name) {
  run_op(OpKind::kWrite, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kChangePassphrase;
    request.username = std::string(username);
    request.passphrase = std::string(old_phrase);
    request.new_passphrase = std::string(new_phrase);
    request.credential_name = std::string(name);
    (void)transact(*channel, request);
    cache_session(port, *channel);
    return 0;
  });
}

void MyProxyClient::store(std::string_view username,
                          std::string_view pass_phrase,
                          const gsi::Credential& credential,
                          const PutOptions& options) {
  run_op(OpKind::kWrite, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kStore;
    request.username = std::string(username);
    request.passphrase = std::string(pass_phrase);
    request.lifetime = options.max_delegation_lifetime;
    request.credential_name = options.credential_name;
    request.retriever_patterns = options.retriever_patterns;
    request.renewer_patterns = options.renewer_patterns;
    request.restriction = options.restriction;
    request.task = options.task_tags;
    (void)transact(*channel, request);

    const SecureBuffer pem = credential.to_pem();
    channel->send(pem.view());
    // Same as put(): a fence/cutover refusal on the second response must
    // stay retryable, not collapse into a plain protocol error.
    check_response(Response::parse(channel->receive()), request.command);
    cache_session(port, *channel);
    return 0;
  });
}

gsi::Credential MyProxyClient::retrieve(std::string_view username,
                                        std::string_view pass_phrase,
                                        std::string_view name) {
  return run_op(OpKind::kRead, username, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kRetrieve;
    request.username = std::string(username);
    request.passphrase = std::string(pass_phrase);
    request.credential_name = std::string(name);
    (void)transact(*channel, request);
    const std::string pem = channel->receive();
    cache_session(port, *channel);
    return gsi::Credential::from_pem(pem);
  });
}

std::map<std::string, std::string> MyProxyClient::server_stats() {
  return run_op(OpKind::kRead, {}, [&](std::uint16_t port) {
    auto channel = connect(port);
    Request request;
    request.command = Command::kStats;
    const Response response = transact(*channel, request);
    cache_session(port, *channel);
    return response.fields;
  });
}

}  // namespace myproxy::client
