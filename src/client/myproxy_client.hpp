// Client API behind the myproxy-* tools (paper §4.1-4.2, §4.4: "a client
// API for accessing the MyProxy server").
//
// Every operation opens one mutually-authenticated TLS connection, performs
// one protocol command, and closes — the original prototype's
// one-command-per-connection model.
//
// Failover: the client accepts a list of endpoints (ports — the
// reproduction runs single-host) where the first is the primary and the
// rest are replicas. Writes go to the primary; reads prefer a replica
// (spreading load off the primary) and fall back across the remaining
// endpoints on transport failure, so a dead primary does not take reads
// down with it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "crypto/keypair_pool.hpp"
#include "gsi/credential.hpp"
#include "gsi/proxy.hpp"
#include "pki/trust_store.hpp"
#include "protocol/message.hpp"
#include "tls/tls_channel.hpp"

namespace myproxy::client {

/// myproxy-init parameters (Figure 1).
struct PutOptions {
  /// Lifetime of the proxy delegated to the repository (§4.1: "normally
  /// ... a week. The user can change this to any length of time desired").
  Seconds stored_lifetime = kDefaultRepositoryLifetime;

  /// Retrieval restriction: the longest proxy the repository may delegate
  /// on the user's behalf (§4.1).
  Seconds max_delegation_lifetime{0};  ///< 0 = server default

  std::string credential_name;  ///< wallet slot (§6.2)
  std::vector<std::string> retriever_patterns;
  std::vector<std::string> renewer_patterns;  ///< §6.6: arms renewal
  bool always_limited = false;
  std::optional<std::string> restriction;  ///< §6.5 "rights=..."
  std::string task_tags;                   ///< §6.2 wallet tags
  bool use_otp = false;  ///< §6.3: pass phrase becomes the OTP chain seed
};

/// myproxy-get-delegation parameters (Figure 2).
struct GetOptions {
  Seconds lifetime{0};  ///< 0 = server default ("a few hours", §4.3)
  std::string credential_name;
  bool want_limited = false;
  bool otp = false;  ///< authenticate with an OTP word instead
  /// Key type for the fresh proxy key pair generated on this side.
  crypto::KeySpec key_spec = crypto::KeySpec::ec();
};

/// Connection robustness policy: deadlines for one attempt plus retry with
/// exponential backoff and jitter across attempts. Only the connect/
/// handshake phase is retried — no request bytes have been sent yet, so a
/// retry can never replay a half-finished command.
struct RetryPolicy {
  /// Total connection attempts (1 = no retry).
  int max_attempts = 3;

  /// Backoff before the second attempt; doubles each retry (capped below).
  Millis initial_backoff{100};
  Millis max_backoff{2000};
  double backoff_multiplier = 2.0;

  /// Multiplicative jitter: each sleep is scaled by a random factor in
  /// [1 - jitter, 1 + jitter] so synchronized clients do not stampede.
  double jitter = 0.2;

  /// Deadline for the TCP three-way handshake of one attempt (0 = none).
  Millis connect_timeout{10000};

  /// Per-read/per-write deadline for the TLS handshake and all subsequent
  /// protocol I/O (0 = none): a stalled repository cannot hang the client.
  Millis io_timeout{30000};

  /// Redirect hop budget shared by replica (PRIMARY) and cluster
  /// (WRONG_SHARD) redirects within one operation. Each hop acts on
  /// information a server just handed us, but a cycle of servers pointing
  /// at each other must terminate: past the budget the operation fails
  /// with RedirectLoop.
  int max_redirect_hops = 3;
};

/// INFO result (metadata only; never key material).
struct StoredCredentialInfo {
  std::string owner_dn;
  TimePoint created_at;
  TimePoint not_after;
  Seconds max_delegation_lifetime{0};
  std::string sealing;
  bool limited = false;
  std::optional<std::string> restriction;
  std::optional<std::uint32_t> otp_remaining;
};

/// A replica refused a write and named the primary. Thrown by write
/// operations issued against a read-only replica; the failover wrapper
/// moves on to the next endpoint, and callers that reach it directly can
/// retry at primary_port.
class ReplicaRedirect : public Error {
 public:
  ReplicaRedirect(std::uint16_t primary_port, const std::string& message)
      : Error(ErrorCode::kPolicy, message), primary_port_(primary_port) {}

  [[nodiscard]] std::uint16_t primary_port() const noexcept {
    return primary_port_;
  }

 private:
  std::uint16_t primary_port_;
};

/// The server shed this request at admission (per-identity rate limit or
/// fair-queue pressure) and hinted when to retry. run_op honors the hint:
/// it sleeps the larger of the hint and its own backoff, then retries the
/// same endpoint, up to RetryPolicy::max_attempts tries.
class ServerBusy : public Error {
 public:
  ServerBusy(Millis retry_after, const std::string& message)
      : Error(ErrorCode::kPolicy, message), retry_after_(retry_after) {}

  [[nodiscard]] Millis retry_after() const noexcept { return retry_after_; }

 private:
  Millis retry_after_;
};

/// The server does not own the target user's shard and named the current
/// owner and map epoch. run_op refreshes the cluster map and retries at
/// the owner, within the shared redirect hop budget.
class WrongShardRedirect : public Error {
 public:
  WrongShardRedirect(std::uint64_t epoch, std::uint32_t shard,
                     std::uint16_t primary_hint, const std::string& message)
      : Error(ErrorCode::kPolicy, message),
        epoch_(epoch),
        shard_(shard),
        primary_hint_(primary_hint) {}

  /// Map epoch the refusing server holds (newer than ours on a stale map).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }
  /// Primary port of the shard's owner per the refusing server (0 = none).
  [[nodiscard]] std::uint16_t primary_hint() const noexcept {
    return primary_hint_;
  }

 private:
  std::uint64_t epoch_;
  std::uint32_t shard_;
  std::uint16_t primary_hint_;
};

/// An operation burned through RetryPolicy::max_redirect_hops redirects
/// without landing on an owner — servers are pointing at each other
/// (mid-migration churn, or inconsistent maps).
class RedirectLoop : public Error {
 public:
  explicit RedirectLoop(const std::string& message)
      : Error(ErrorCode::kPolicy, message) {}
};

class MyProxyClient {
 public:
  /// `credential`: this client's own Grid credential for the mutual TLS
  /// authentication (a user proxy for myproxy-init, the portal's service
  /// credential for retrievals — §4.3). `trust_store` authenticates the
  /// repository in return (§5.1: "prevents an attacker from impersonating
  /// the repository").
  MyProxyClient(gsi::Credential credential, pki::TrustStore trust_store,
                std::uint16_t port, RetryPolicy retry_policy = {});

  /// Multi-endpoint form: `ports` lists the primary first, replicas after.
  /// Operations fail over along the list (see run_op).
  MyProxyClient(gsi::Credential credential, pki::TrustStore trust_store,
                std::vector<std::uint16_t> ports,
                RetryPolicy retry_policy = {});

  [[nodiscard]] const std::vector<std::uint16_t>& ports() const {
    return ports_;
  }

  /// Adjust deadlines/retry after construction (tools wire CLI flags here).
  void set_retry_policy(RetryPolicy policy) {
    retry_policy_ = std::move(policy);
  }
  [[nodiscard]] const RetryPolicy& retry_policy() const {
    return retry_policy_;
  }

  /// Reuse TLS sessions across this client's connections (on by default):
  /// after a successful operation the session is cached and offered on the
  /// next connect, replacing the full handshake with an abbreviated one.
  /// The server still enforces every ACL per request against the identity
  /// it verified at the original full handshake.
  void set_session_resumption(bool enabled) {
    session_resumption_ = enabled;
    if (!enabled) cached_sessions_.clear();
  }

  /// Pre-generated proxy keys for get()/renew() (the receiver-side keygen
  /// is the dominant client cost with RSA specs). Only used when the
  /// pool's spec matches the requested GetOptions::key_spec.
  void set_key_pool(std::shared_ptr<crypto::KeyPairPool> pool) {
    key_pool_ = std::move(pool);
  }

  /// Connection counters: how many connects resumed a cached session vs
  /// performed a full handshake (for benches/tests).
  [[nodiscard]] std::uint64_t resumed_connections() const {
    return resumed_connections_;
  }
  [[nodiscard]] std::uint64_t full_connections() const {
    return full_connections_;
  }

  /// myproxy-init: create a proxy from `source` and delegate it to the
  /// repository under (`username`, `pass_phrase`).
  void put(std::string_view username, std::string_view pass_phrase,
           const gsi::Credential& source, const PutOptions& options = {});

  /// myproxy-get-delegation: retrieve a fresh delegated proxy.
  [[nodiscard]] gsi::Credential get(std::string_view username,
                                    std::string_view pass_phrase,
                                    const GetOptions& options = {});

  /// §6.6: refresh an expiring credential without a pass phrase. The TLS
  /// client credential must be the identity that stored the credential
  /// (e.g. the job's current proxy), and must pass the renewer ACLs.
  [[nodiscard]] gsi::Credential renew(std::string_view username,
                                      const GetOptions& options = {});

  /// myproxy-destroy.
  void destroy(std::string_view username, std::string_view name = {});

  [[nodiscard]] StoredCredentialInfo info(std::string_view username,
                                          std::string_view name = {});

  /// Wallet listing (§6.2); "(default)" marks the unnamed slot.
  [[nodiscard]] std::vector<std::string> list(std::string_view username);

  /// Wallet selection (§6.2): name of the credential for `task`.
  [[nodiscard]] std::string select_for_task(std::string_view username,
                                            std::string_view task);

  void change_passphrase(std::string_view username,
                         std::string_view old_phrase,
                         std::string_view new_phrase,
                         std::string_view name = {});

  /// §6.1: store a long-term credential (certificate AND key) for later
  /// retrieval from anywhere.
  void store(std::string_view username, std::string_view pass_phrase,
             const gsi::Credential& credential,
             const PutOptions& options = {});

  /// §6.1: retrieve stored key material (owner only).
  [[nodiscard]] gsi::Credential retrieve(std::string_view username,
                                         std::string_view pass_phrase,
                                         std::string_view name = {});

  /// STATS command: the server's counter dump (myproxy-admin-query
  /// --stats). Key/value pairs exactly as the server sent them. Routed
  /// like a read, so on a multi-endpoint client it reports whichever
  /// endpoint answered.
  [[nodiscard]] std::map<std::string, std::string> server_stats();

  /// Identity of the repository server from the last connection (for
  /// logging / tests of mutual authentication).
  [[nodiscard]] const std::optional<pki::DistinguishedName>& server_identity()
      const {
    return server_identity_;
  }

  // --- Cluster routing --------------------------------------------------------

  /// Route operations by the cluster shard map: hash the target username,
  /// send writes to the owning node's primary and reads to its replicas.
  /// Without a map installed (or fetched), operations use the plain
  /// endpoint list until a WRONG_SHARD refusal teaches us better.
  void set_cluster_routing(bool enabled) { cluster_routing_ = enabled; }

  /// Install a shard map directly (config-distributed maps, tests) and
  /// enable routing.
  void set_cluster_map(cluster::ClusterMap map) {
    cluster_map_ = std::move(map);
    cluster_routing_ = true;
  }

  /// The map this client currently routes by (nullopt until installed or
  /// fetched).
  [[nodiscard]] const std::optional<cluster::ClusterMap>& cluster_map()
      const {
    return cluster_map_;
  }

  /// Fetch the shard map from the cluster (CLUSTER_MAP command), install
  /// it, enable routing, and return it.
  cluster::ClusterMap fetch_cluster_map();

  /// Admin: move `shard` to the node whose primary listens on
  /// `target_port` (MIGRATE). Returns the server's result fields
  /// (MOVED_USERS / MOVED_RECORDS / EPOCH). Sent to the shard's current
  /// owner when a map is installed, else to the first endpoint.
  std::map<std::string, std::string> cluster_migrate(
      std::uint32_t shard, std::uint16_t target_port);

  /// Routing observability for tests: WRONG_SHARD refusals followed, and
  /// cluster-map fetches performed.
  [[nodiscard]] std::uint64_t wrong_shard_redirects() const {
    return wrong_shard_redirects_;
  }
  [[nodiscard]] std::uint64_t map_refreshes() const { return map_refreshes_; }

 private:
  /// Whether an operation mutates the repository — decides which endpoint
  /// order run_op tries. OTP-authenticated reads count as writes (OTP
  /// verification advances the chain on the server).
  enum class OpKind { kRead, kWrite };

  /// Endpoint order for `kind`. With cluster routing and a map, the order
  /// comes from `username`'s owning node (its primary for writes, replicas
  /// then primary for reads). Otherwise: writes go to the primary only —
  /// replicas cannot accept them and there is no automatic promotion, so
  /// failing over a write could at best replay it and at worst misreport
  /// its outcome; reads try replicas first with the primary as the last
  /// resort.
  [[nodiscard]] std::vector<std::uint16_t> candidates(
      OpKind kind, std::string_view username) const;

  /// Run `fn(port)` against each candidate endpoint until one succeeds.
  /// Transport failures (IoError — endpoint dead or unreachable after
  /// connect()'s own retries) and read-only refusals (ReplicaRedirect)
  /// move to the next endpoint. Redirects that carry a destination — a
  /// replica naming its primary, a clustered node naming a shard's owner —
  /// are followed (refreshing the cluster map for WRONG_SHARD) within
  /// RetryPolicy::max_redirect_hops. Everything else propagates unchanged.
  template <typename Fn>
  auto run_op(OpKind kind, std::string_view username, Fn&& fn)
      -> decltype(fn(std::uint16_t{}));

  /// Fetch + install the cluster map, trying `preferred` (when non-zero)
  /// before the configured endpoints and any known shard primaries.
  cluster::ClusterMap fetch_cluster_map_from(std::uint16_t preferred);

  /// Map a refused response to the typed error it encodes (ServerBusy,
  /// WrongShardRedirect, ReplicaRedirect, or plain Error). No-op when ok.
  void check_response(const protocol::Response& response,
                      protocol::Command command);

  /// Run `fn(port)` against one endpoint, retrying ServerBusy refusals
  /// after sleeping max(own backoff, server retry-after hint).
  template <typename Fn>
  auto run_with_busy_retry(Fn&& fn, std::uint16_t port)
      -> decltype(fn(std::uint16_t{}));

  /// Open a connection to `port`, run the TLS handshake, authenticate the
  /// server. Transient transport failures (refused, timed out, handshake
  /// broken) are retried per retry_policy_; authentication failures are
  /// not.
  [[nodiscard]] std::unique_ptr<tls::TlsChannel> connect(std::uint16_t port);

  /// One connection attempt with the policy's deadlines applied.
  [[nodiscard]] std::unique_ptr<tls::TlsChannel> connect_once(
      std::uint16_t port);

  /// Backoff duration before attempt number `attempt` (1-based).
  [[nodiscard]] Millis backoff_for_attempt(int attempt);

  /// Send a request and insist on an OK first response. A refusal carrying
  /// a PRIMARY field (a replica redirecting a write) throws
  /// ReplicaRedirect instead of a plain Error.
  [[nodiscard]] protocol::Response transact(tls::TlsChannel& channel,
                                            const protocol::Request& request);

  /// Snapshot the channel's session for the next connect to `port` (call
  /// once the operation has succeeded; by then the server's ticket has
  /// arrived). Sessions are cached per endpoint — a ticket minted by the
  /// primary means nothing to a replica.
  void cache_session(std::uint16_t port, tls::TlsChannel& channel);

  /// Receiver-side delegation start: pooled key when available, else a
  /// synchronous generation for `spec`.
  [[nodiscard]] gsi::DelegationRequest start_delegation(
      const crypto::KeySpec& spec);

  gsi::Credential credential_;
  pki::TrustStore trust_store_;
  tls::TlsContext tls_context_;
  std::vector<std::uint16_t> ports_;  ///< primary first, replicas after
  RetryPolicy retry_policy_;
  std::mt19937 jitter_rng_;
  std::optional<pki::DistinguishedName> server_identity_;
  bool session_resumption_ = true;
  std::map<std::uint16_t, tls::TlsSession> cached_sessions_;
  std::shared_ptr<crypto::KeyPairPool> key_pool_;
  std::uint64_t resumed_connections_ = 0;
  std::uint64_t full_connections_ = 0;

  bool cluster_routing_ = false;
  std::optional<cluster::ClusterMap> cluster_map_;
  std::uint64_t wrong_shard_redirects_ = 0;
  std::uint64_t map_refreshes_ = 0;
};

}  // namespace myproxy::client
