#include "tls/tls_channel.hpp"

#include <openssl/err.h>
#include <openssl/ssl.h>
#include <openssl/x509.h>

#include "common/error.hpp"
#include "common/format.hpp"
#include "crypto/openssl_util.hpp"

#include <cerrno>
#include <csignal>
#include <mutex>

namespace myproxy::tls {

namespace {

// SSL_write uses plain write(2); a peer that slams the connection shut
// would otherwise kill the whole server process with SIGPIPE. Write errors
// are reported through SSL_get_error instead.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

// Accept every certificate at the TLS layer; real validation happens in
// TrustStore::verify with GSI proxy semantics. Returning 1 here does NOT
// grant trust — a peer without a verifiable chain fails one layer up.
int accept_all_verify_callback(int /*preverify_ok*/,
                               X509_STORE_CTX* /*ctx*/) {
  return 1;
}

[[noreturn]] void throw_ssl(std::string_view what, SSL* ssl, int rc) {
  const int saved_errno = errno;
  const int err = SSL_get_error(ssl, rc);
  const std::string queued = crypto::drain_error_queue();
  // With SO_RCVTIMEO/SO_SNDTIMEO armed on the underlying descriptor the
  // socket stays "blocking", so a deadline expiry surfaces here either as a
  // retryable BIO (WANT_READ/WANT_WRITE) or as a syscall EAGAIN.
  if (err == SSL_ERROR_WANT_READ || err == SSL_ERROR_WANT_WRITE ||
      (err == SSL_ERROR_SYSCALL &&
       (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK))) {
    throw IoTimeout(fmt::format("{}: I/O deadline expired", what));
  }
  throw IoError(
      fmt::format("{}: ssl_error={} ({})", what, err, queued));
}

}  // namespace

TlsContext TlsContext::make(const gsi::Credential& credential,
                            PeerAuth peer_auth) {
  ignore_sigpipe_once();
  SSL_CTX* raw = SSL_CTX_new(TLS_method());
  crypto::check_ptr(raw, "SSL_CTX_new");
  TlsContext out;
  out.ctx_ = std::shared_ptr<SSL_CTX>(raw,
                                      [](SSL_CTX* p) { SSL_CTX_free(p); });

  crypto::check(SSL_CTX_set_min_proto_version(raw, TLS1_2_VERSION),
                "SSL_CTX_set_min_proto_version");
  crypto::check(SSL_CTX_use_certificate(raw, credential.certificate().native()),
                "SSL_CTX_use_certificate");
  crypto::check(SSL_CTX_use_PrivateKey(raw, credential.key().native()),
                "SSL_CTX_use_PrivateKey");
  crypto::check(SSL_CTX_check_private_key(raw), "SSL_CTX_check_private_key");
  for (const auto& cert : credential.chain()) {
    // add_extra_chain_cert takes ownership; hand it its own reference.
    X509* copy = cert.native();
    X509_up_ref(copy);
    if (SSL_CTX_add_extra_chain_cert(raw, copy) != 1) {
      X509_free(copy);
      crypto::throw_openssl("SSL_CTX_add_extra_chain_cert");
    }
  }

  if (peer_auth == PeerAuth::kRequired) {
    // Require a peer certificate in both directions (mutual authentication,
    // paper §5.1), but defer the trust decision to the GSI layer.
    SSL_CTX_set_verify(raw, SSL_VERIFY_PEER | SSL_VERIFY_FAIL_IF_NO_PEER_CERT,
                       accept_all_verify_callback);
  } else {
    // Browser-facing HTTPS: clients hold no Grid credentials (§3.2); they
    // authenticate with the user name + pass phrase form instead.
    SSL_CTX_set_verify(raw, SSL_VERIFY_NONE, nullptr);
  }
  return out;
}

TlsContext TlsContext::anonymous_client() {
  ignore_sigpipe_once();
  SSL_CTX* raw = SSL_CTX_new(TLS_method());
  crypto::check_ptr(raw, "SSL_CTX_new");
  TlsContext out;
  out.ctx_ = std::shared_ptr<SSL_CTX>(raw,
                                      [](SSL_CTX* p) { SSL_CTX_free(p); });
  crypto::check(SSL_CTX_set_min_proto_version(raw, TLS1_2_VERSION),
                "SSL_CTX_set_min_proto_version");
  SSL_CTX_set_verify(raw, SSL_VERIFY_NONE, nullptr);
  return out;
}

struct TlsChannel::Impl {
  net::Socket socket;
  SSL* ssl = nullptr;

  ~Impl() {
    if (ssl != nullptr) SSL_free(ssl);
  }
};

TlsChannel::TlsChannel(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {
  // Collect the peer chain, leaf first. A missing certificate is legal
  // only when the context was built with PeerAuth::kNone (the TLS
  // handshake itself enforces kRequired); peer_chain() stays empty then.
  X509* leaf = SSL_get_peer_certificate(impl_->ssl);  // +1 ref
  if (leaf == nullptr) return;
  peer_chain_.push_back(pki::Certificate::adopt(leaf));

  STACK_OF(X509)* stack = SSL_get_peer_cert_chain(impl_->ssl);  // borrowed
  if (stack != nullptr) {
    for (int i = 0; i < sk_X509_num(stack); ++i) {
      X509* cert = sk_X509_value(stack, i);
      pki::Certificate wrapped = [cert] {
        X509_up_ref(cert);
        return pki::Certificate::adopt(cert);
      }();
      // On the connecting side the stack includes the leaf; skip it.
      if (wrapped == peer_chain_.front()) continue;
      peer_chain_.push_back(std::move(wrapped));
    }
  }
}

TlsChannel::~TlsChannel() = default;

std::unique_ptr<TlsChannel> TlsChannel::accept(
    const TlsContext& context, net::Socket socket,
    std::chrono::milliseconds handshake_timeout) {
  auto impl = std::make_unique<Impl>();
  impl->socket = std::move(socket);
  if (handshake_timeout.count() > 0) {
    impl->socket.set_deadlines(handshake_timeout, handshake_timeout);
  }
  impl->ssl = crypto::check_ptr(SSL_new(context.native()), "SSL_new");
  crypto::check(SSL_set_fd(impl->ssl, impl->socket.fd()), "SSL_set_fd");
  const int rc = SSL_accept(impl->ssl);
  if (rc != 1) throw_ssl("TLS accept handshake failed", impl->ssl, rc);
  return std::unique_ptr<TlsChannel>(new TlsChannel(std::move(impl)));
}

std::unique_ptr<TlsChannel> TlsChannel::connect(
    const TlsContext& context, net::Socket socket,
    std::chrono::milliseconds handshake_timeout) {
  auto impl = std::make_unique<Impl>();
  impl->socket = std::move(socket);
  if (handshake_timeout.count() > 0) {
    impl->socket.set_deadlines(handshake_timeout, handshake_timeout);
  }
  impl->ssl = crypto::check_ptr(SSL_new(context.native()), "SSL_new");
  crypto::check(SSL_set_fd(impl->ssl, impl->socket.fd()), "SSL_set_fd");
  const int rc = SSL_connect(impl->ssl);
  if (rc != 1) throw_ssl("TLS connect handshake failed", impl->ssl, rc);
  return std::unique_ptr<TlsChannel>(new TlsChannel(std::move(impl)));
}

void TlsChannel::set_deadlines(std::chrono::milliseconds read,
                               std::chrono::milliseconds write) {
  impl_->socket.set_deadlines(read, write);
}

void TlsChannel::send(std::string_view message) {
  const std::string header = net::encode_frame_header(message.size());
  std::string framed = header;
  framed += message;
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const int n = SSL_write(impl_->ssl, framed.data() + sent,
                            static_cast<int>(framed.size() - sent));
    if (n <= 0) throw_ssl("SSL_write", impl_->ssl, n);
    sent += static_cast<std::size_t>(n);
  }
}

std::string TlsChannel::receive() {
  const auto read_exact = [this](std::size_t n) {
    std::string out(n, '\0');
    std::size_t got = 0;
    while (got < n) {
      const int r = SSL_read(impl_->ssl, out.data() + got,
                             static_cast<int>(n - got));
      if (r <= 0) throw_ssl("SSL_read", impl_->ssl, r);
      got += static_cast<std::size_t>(r);
    }
    return out;
  };
  const std::string header = read_exact(4);
  const std::size_t size = net::decode_frame_header(header);
  if (size == 0) return {};
  return read_exact(size);
}

void TlsChannel::close() noexcept {
  if (impl_ != nullptr && impl_->ssl != nullptr) {
    SSL_shutdown(impl_->ssl);
  }
  if (impl_ != nullptr) impl_->socket.close();
}

std::string TlsChannel::protocol_version() const {
  return SSL_get_version(impl_->ssl);
}

}  // namespace myproxy::tls
