#include "tls/tls_channel.hpp"

#include <openssl/err.h>
#include <openssl/ssl.h>
#include <openssl/x509.h>

#include "common/error.hpp"
#include "common/format.hpp"
#include "crypto/openssl_util.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <mutex>

namespace myproxy::tls {

namespace {

// SSL_write uses plain write(2); a peer that slams the connection shut
// would otherwise kill the whole server process with SIGPIPE. Write errors
// are reported through SSL_get_error instead.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

// Accept every certificate at the TLS layer; real validation happens in
// TrustStore::verify with GSI proxy semantics. Returning 1 here does NOT
// grant trust — a peer without a verifiable chain fails one layer up.
int accept_all_verify_callback(int /*preverify_ok*/,
                               X509_STORE_CTX* /*ctx*/) {
  return 1;
}

// Per-SSL pointer back to the owning TlsChannel::Impl so the ticket
// callbacks (which only see the SSL*) can exchange appdata with the
// channel object.
int impl_ex_data_index() {
  static const int index =
      SSL_get_ex_new_index(0, nullptr, nullptr, nullptr, nullptr);
  return index;
}

// Defined after TlsChannel::Impl (they dereference it).
int ticket_gen_callback(SSL* ssl, void* arg);
SSL_TICKET_RETURN ticket_decrypt_callback(SSL* ssl, SSL_SESSION* session,
                                          const unsigned char* keyname,
                                          size_t keyname_length,
                                          SSL_TICKET_STATUS status,
                                          void* arg);

[[noreturn]] void throw_ssl(std::string_view what, SSL* ssl, int rc) {
  const int saved_errno = errno;
  const int err = SSL_get_error(ssl, rc);
  const std::string queued = crypto::drain_error_queue();
  // With SO_RCVTIMEO/SO_SNDTIMEO armed on the underlying descriptor the
  // socket stays "blocking", so a deadline expiry surfaces here either as a
  // retryable BIO (WANT_READ/WANT_WRITE) or as a syscall EAGAIN.
  if (err == SSL_ERROR_WANT_READ || err == SSL_ERROR_WANT_WRITE ||
      (err == SSL_ERROR_SYSCALL &&
       (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK))) {
    throw IoTimeout(fmt::format("{}: I/O deadline expired", what));
  }
  throw IoError(
      fmt::format("{}: ssl_error={} ({})", what, err, queued));
}

}  // namespace

TlsSession TlsSession::adopt(SSL_SESSION* session) {
  TlsSession out;
  if (session != nullptr) {
    out.session_ = std::shared_ptr<SSL_SESSION>(
        session, [](SSL_SESSION* p) { SSL_SESSION_free(p); });
  }
  return out;
}

TlsContext TlsContext::make(const gsi::Credential& credential,
                            PeerAuth peer_auth,
                            const SessionResumption& resumption) {
  ignore_sigpipe_once();
  SSL_CTX* raw = SSL_CTX_new(TLS_method());
  crypto::check_ptr(raw, "SSL_CTX_new");
  TlsContext out;
  out.ctx_ = std::shared_ptr<SSL_CTX>(raw,
                                      [](SSL_CTX* p) { SSL_CTX_free(p); });

  crypto::check(SSL_CTX_set_min_proto_version(raw, TLS1_2_VERSION),
                "SSL_CTX_set_min_proto_version");
  crypto::check(SSL_CTX_use_certificate(raw, credential.certificate().native()),
                "SSL_CTX_use_certificate");
  crypto::check(SSL_CTX_use_PrivateKey(raw, credential.key().native()),
                "SSL_CTX_use_PrivateKey");
  crypto::check(SSL_CTX_check_private_key(raw), "SSL_CTX_check_private_key");
  for (const auto& cert : credential.chain()) {
    // add_extra_chain_cert takes ownership; hand it its own reference.
    X509* copy = cert.native();
    X509_up_ref(copy);
    if (SSL_CTX_add_extra_chain_cert(raw, copy) != 1) {
      X509_free(copy);
      crypto::throw_openssl("SSL_CTX_add_extra_chain_cert");
    }
  }

  if (peer_auth == PeerAuth::kRequired) {
    // Require a peer certificate in both directions (mutual authentication,
    // paper §5.1), but defer the trust decision to the GSI layer.
    SSL_CTX_set_verify(raw, SSL_VERIFY_PEER | SSL_VERIFY_FAIL_IF_NO_PEER_CERT,
                       accept_all_verify_callback);
  } else {
    // Browser-facing HTTPS: clients hold no Grid credentials (§3.2); they
    // authenticate with the user name + pass phrase form instead.
    SSL_CTX_set_verify(raw, SSL_VERIFY_NONE, nullptr);
  }

  if (resumption.enabled) {
    // Resumption is ticket-based (works for both TLS 1.2 and 1.3, stateless
    // on the server). Automatic ticket issuance is suppressed — the server
    // decides per connection, *after* GSI verification, whether to arm a
    // ticket carrying the authenticated identity (arm_session_ticket).
    static const unsigned char kSidCtx[] = "myproxy";
    SSL_CTX_set_session_id_context(raw, kSidCtx, sizeof(kSidCtx) - 1);
    SSL_CTX_set_session_cache_mode(raw, SSL_SESS_CACHE_SERVER |
                                            SSL_SESS_CACHE_NO_INTERNAL);
    SSL_CTX_set_timeout(raw, static_cast<long>(resumption.timeout.count()));
    SSL_CTX_set_num_tickets(raw, 0);
    crypto::check(SSL_CTX_set_session_ticket_cb(raw, ticket_gen_callback,
                                                ticket_decrypt_callback,
                                                nullptr),
                  "SSL_CTX_set_session_ticket_cb");
  } else {
    // Explicitly no resumption: baseline contexts must not hand out
    // tickets a future connection could use to skip re-authentication.
    SSL_CTX_set_session_cache_mode(raw, SSL_SESS_CACHE_OFF);
    SSL_CTX_set_num_tickets(raw, 0);
  }
  return out;
}

TlsContext TlsContext::anonymous_client() {
  ignore_sigpipe_once();
  SSL_CTX* raw = SSL_CTX_new(TLS_method());
  crypto::check_ptr(raw, "SSL_CTX_new");
  TlsContext out;
  out.ctx_ = std::shared_ptr<SSL_CTX>(raw,
                                      [](SSL_CTX* p) { SSL_CTX_free(p); });
  crypto::check(SSL_CTX_set_min_proto_version(raw, TLS1_2_VERSION),
                "SSL_CTX_set_min_proto_version");
  SSL_CTX_set_verify(raw, SSL_VERIFY_NONE, nullptr);
  return out;
}

struct TlsChannel::Impl {
  net::Socket socket;
  SSL* ssl = nullptr;

  /// Appdata to seal into the next ticket generated on this connection
  /// (set by arm_session_ticket on the accepting side).
  std::string ticket_appdata_out;

  /// Appdata recovered from the ticket the peer resumed with.
  std::optional<std::string> ticket_appdata_in;

  // Incremental-receive state (receive_step on the reactor path): bytes
  // accumulated toward the current header or body, and the body size once
  // the header has been decoded.
  std::string rx_buffer;
  std::size_t rx_body_size = 0;
  bool rx_have_header = false;

  ~Impl() {
    if (ssl != nullptr) SSL_free(ssl);
  }
};

namespace {

TlsChannel::Impl* impl_from_ssl(SSL* ssl) {
  return static_cast<TlsChannel::Impl*>(
      SSL_get_ex_data(ssl, impl_ex_data_index()));
}

int ticket_gen_callback(SSL* ssl, void* /*arg*/) {
  // Only issue tickets the application armed: a ticket without sealed
  // identity appdata would let a resuming peer skip GSI verification
  // without giving the server anything to authorize against.
  TlsChannel::Impl* impl = impl_from_ssl(ssl);
  if (impl == nullptr || impl->ticket_appdata_out.empty()) return 0;
  if (SSL_SESSION_set1_ticket_appdata(
          SSL_get_session(ssl), impl->ticket_appdata_out.data(),
          impl->ticket_appdata_out.size()) != 1) {
    return 0;
  }
  return 1;
}

SSL_TICKET_RETURN ticket_decrypt_callback(SSL* ssl, SSL_SESSION* session,
                                          const unsigned char* /*keyname*/,
                                          size_t /*keyname_length*/,
                                          SSL_TICKET_STATUS status,
                                          void* /*arg*/) {
  if (status != SSL_TICKET_SUCCESS && status != SSL_TICKET_SUCCESS_RENEW) {
    // Undecryptable / unrecognized ticket (e.g. issued by a previous server
    // process): ignore it and fall back to a full handshake.
    return SSL_TICKET_RETURN_IGNORE;
  }
  void* data = nullptr;
  size_t length = 0;
  if (SSL_SESSION_get0_ticket_appdata(session, &data, &length) != 1 ||
      data == nullptr || length == 0) {
    // Ticket without sealed identity: never accept it for resumption.
    return SSL_TICKET_RETURN_IGNORE;
  }
  if (TlsChannel::Impl* impl = impl_from_ssl(ssl); impl != nullptr) {
    impl->ticket_appdata_in =
        std::string(static_cast<const char*>(data), length);
  }
  return status == SSL_TICKET_SUCCESS_RENEW ? SSL_TICKET_RETURN_USE_RENEW
                                            : SSL_TICKET_RETURN_USE;
}

}  // namespace

TlsChannel::TlsChannel(std::unique_ptr<Impl> impl, bool handshake_done)
    : impl_(std::move(impl)) {
  if (handshake_done) collect_peer_chain();
}

void TlsChannel::collect_peer_chain() {
  // Collect the peer chain, leaf first. A missing certificate is legal
  // only when the context was built with PeerAuth::kNone (the TLS
  // handshake itself enforces kRequired); peer_chain() stays empty then.
  X509* leaf = SSL_get_peer_certificate(impl_->ssl);  // +1 ref
  if (leaf == nullptr) return;
  peer_chain_.push_back(pki::Certificate::adopt(leaf));

  STACK_OF(X509)* stack = SSL_get_peer_cert_chain(impl_->ssl);  // borrowed
  if (stack != nullptr) {
    for (int i = 0; i < sk_X509_num(stack); ++i) {
      X509* cert = sk_X509_value(stack, i);
      pki::Certificate wrapped = [cert] {
        X509_up_ref(cert);
        return pki::Certificate::adopt(cert);
      }();
      // On the connecting side the stack includes the leaf; skip it.
      if (wrapped == peer_chain_.front()) continue;
      peer_chain_.push_back(std::move(wrapped));
    }
  }
}

TlsChannel::~TlsChannel() = default;

std::unique_ptr<TlsChannel> TlsChannel::accept(
    const TlsContext& context, net::Socket socket,
    std::chrono::milliseconds handshake_timeout) {
  auto impl = std::make_unique<Impl>();
  impl->socket = std::move(socket);
  if (handshake_timeout.count() > 0) {
    impl->socket.set_deadlines(handshake_timeout, handshake_timeout);
  }
  impl->ssl = crypto::check_ptr(SSL_new(context.native()), "SSL_new");
  crypto::check(SSL_set_ex_data(impl->ssl, impl_ex_data_index(), impl.get()),
                "SSL_set_ex_data");
  crypto::check(SSL_set_fd(impl->ssl, impl->socket.fd()), "SSL_set_fd");
  const int rc = SSL_accept(impl->ssl);
  if (rc != 1) throw_ssl("TLS accept handshake failed", impl->ssl, rc);
  return std::unique_ptr<TlsChannel>(new TlsChannel(std::move(impl), true));
}

std::unique_ptr<TlsChannel> TlsChannel::accept_async(const TlsContext& context,
                                                     net::Socket socket) {
  auto impl = std::make_unique<Impl>();
  impl->socket = std::move(socket);
  impl->ssl = crypto::check_ptr(SSL_new(context.native()), "SSL_new");
  crypto::check(SSL_set_ex_data(impl->ssl, impl_ex_data_index(), impl.get()),
                "SSL_set_ex_data");
  crypto::check(SSL_set_fd(impl->ssl, impl->socket.fd()), "SSL_set_fd");
  SSL_set_accept_state(impl->ssl);
  return std::unique_ptr<TlsChannel>(new TlsChannel(std::move(impl), false));
}

IoWant TlsChannel::handshake_step() {
  const int rc = SSL_do_handshake(impl_->ssl);
  if (rc == 1) {
    collect_peer_chain();
    return IoWant::kDone;
  }
  const int err = SSL_get_error(impl_->ssl, rc);
  if (err == SSL_ERROR_WANT_READ) return IoWant::kRead;
  if (err == SSL_ERROR_WANT_WRITE) return IoWant::kWrite;
  const std::string queued = crypto::drain_error_queue();
  throw IoError(fmt::format(
      "TLS handshake failed: ssl_error={} ({})", err, queued));
}

IoWant TlsChannel::receive_step(std::string& out) {
  auto& im = *impl_;
  while (true) {
    const std::size_t target = im.rx_have_header ? im.rx_body_size : 4;
    while (im.rx_buffer.size() < target) {
      char chunk[4096];
      // Never read past the current frame boundary: a blocking receive()
      // issued by a worker after the handoff must see an intact stream.
      const std::size_t want =
          std::min(sizeof(chunk), target - im.rx_buffer.size());
      const int r = SSL_read(im.ssl, chunk, static_cast<int>(want));
      if (r <= 0) {
        const int err = SSL_get_error(im.ssl, r);
        if (err == SSL_ERROR_WANT_READ) return IoWant::kRead;
        if (err == SSL_ERROR_WANT_WRITE) return IoWant::kWrite;
        const std::string queued = crypto::drain_error_queue();
        throw IoError(fmt::format(
            "SSL_read failed: ssl_error={} ({})", err, queued));
      }
      im.rx_buffer.append(chunk, static_cast<std::size_t>(r));
    }
    if (!im.rx_have_header) {
      im.rx_body_size = net::decode_frame_header(im.rx_buffer);
      im.rx_buffer.clear();
      im.rx_have_header = true;
      if (im.rx_body_size == 0) {
        im.rx_have_header = false;
        out.clear();
        return IoWant::kDone;
      }
      im.rx_buffer.reserve(im.rx_body_size);
      continue;
    }
    out = std::move(im.rx_buffer);
    im.rx_buffer.clear();
    im.rx_have_header = false;
    im.rx_body_size = 0;
    return IoWant::kDone;
  }
}

int TlsChannel::fd() const noexcept { return impl_->socket.fd(); }

void TlsChannel::make_blocking() { impl_->socket.set_nonblocking(false); }

std::unique_ptr<TlsChannel> TlsChannel::connect(
    const TlsContext& context, net::Socket socket,
    std::chrono::milliseconds handshake_timeout, const TlsSession* resume) {
  auto impl = std::make_unique<Impl>();
  impl->socket = std::move(socket);
  if (handshake_timeout.count() > 0) {
    impl->socket.set_deadlines(handshake_timeout, handshake_timeout);
  }
  impl->ssl = crypto::check_ptr(SSL_new(context.native()), "SSL_new");
  crypto::check(SSL_set_ex_data(impl->ssl, impl_ex_data_index(), impl.get()),
                "SSL_set_ex_data");
  crypto::check(SSL_set_fd(impl->ssl, impl->socket.fd()), "SSL_set_fd");
  if (resume != nullptr && resume->valid()) {
    crypto::check(SSL_set_session(impl->ssl, resume->native()),
                  "SSL_set_session");
  }
  const int rc = SSL_connect(impl->ssl);
  if (rc != 1) throw_ssl("TLS connect handshake failed", impl->ssl, rc);
  return std::unique_ptr<TlsChannel>(new TlsChannel(std::move(impl), true));
}

void TlsChannel::set_deadlines(std::chrono::milliseconds read,
                               std::chrono::milliseconds write) {
  impl_->socket.set_deadlines(read, write);
}

void TlsChannel::send(std::string_view message) {
  const std::string header = net::encode_frame_header(message.size());
  std::string framed = header;
  framed += message;
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const int n = SSL_write(impl_->ssl, framed.data() + sent,
                            static_cast<int>(framed.size() - sent));
    if (n <= 0) throw_ssl("SSL_write", impl_->ssl, n);
    sent += static_cast<std::size_t>(n);
  }
}

std::string TlsChannel::receive() {
  const auto read_exact = [this](std::size_t n) {
    std::string out(n, '\0');
    std::size_t got = 0;
    while (got < n) {
      const int r = SSL_read(impl_->ssl, out.data() + got,
                             static_cast<int>(n - got));
      if (r <= 0) throw_ssl("SSL_read", impl_->ssl, r);
      got += static_cast<std::size_t>(r);
    }
    return out;
  };
  const std::string header = read_exact(4);
  const std::size_t size = net::decode_frame_header(header);
  if (size == 0) return {};
  return read_exact(size);
}

void TlsChannel::close() noexcept {
  if (impl_ != nullptr && impl_->ssl != nullptr) {
    SSL_shutdown(impl_->ssl);
  }
  if (impl_ != nullptr) impl_->socket.close();
}

std::string TlsChannel::protocol_version() const {
  return SSL_get_version(impl_->ssl);
}

bool TlsChannel::resumed() const {
  return SSL_session_reused(impl_->ssl) != 0;
}

void TlsChannel::arm_session_ticket(std::string appdata) {
  if (appdata.empty()) return;
  // SSL_new_session_ticket sidesteps SSL_CTX_set_num_tickets(ctx, 0), so a
  // context built without resumption would still mint a (callback-free,
  // identity-less) ticket here. Only resumption-enabled contexts carry
  // SSL_SESS_CACHE_SERVER; treat everything else as a no-op.
  const long cache_mode =
      SSL_CTX_get_session_cache_mode(SSL_get_SSL_CTX(impl_->ssl));
  if ((cache_mode & SSL_SESS_CACHE_SERVER) == 0) return;
  impl_->ticket_appdata_out = std::move(appdata);
  // SSL_new_session_ticket queues a NewSessionTicket; it leaves with the
  // next SSL_write. Fails benignly on contexts without resumption or on
  // TLS 1.2 connections (which got their ticket, if any, in-handshake).
  if (SSL_new_session_ticket(impl_->ssl) != 1) {
    impl_->ticket_appdata_out.clear();
    (void)crypto::drain_error_queue();
  }
}

const std::optional<std::string>& TlsChannel::ticket_appdata() const {
  return impl_->ticket_appdata_in;
}

TlsSession TlsChannel::session() const {
  SSL_SESSION* session = SSL_get1_session(impl_->ssl);  // +1 ref
  if (session == nullptr) return {};
  // Ticketless TLS 1.3 sessions still claim to be resumable (OpenSSL
  // synthesizes a session id); without a ticket the server can never
  // accept them, so treat them as non-resumable.
  if (SSL_SESSION_is_resumable(session) != 1 ||
      SSL_SESSION_has_ticket(session) != 1) {
    SSL_SESSION_free(session);
    return {};
  }
  // Snapshot the session: the live object stays referenced by the SSL,
  // and tearing that connection down without a bidirectional close_notify
  // marks it not-resumable in place, which would silently disable the
  // pre_shared_key offer on the next connect.
  SSL_SESSION* snapshot = SSL_SESSION_dup(session);
  SSL_SESSION_free(session);
  if (snapshot == nullptr) {
    (void)crypto::drain_error_queue();
    return {};
  }
  return TlsSession::adopt(snapshot);
}

}  // namespace myproxy::tls
