// TLS transport with mutual authentication by Grid credentials.
//
// The paper uses SSL for three things (§2.2): authentication, message
// integrity, and message privacy, with *mutual* authentication between
// MyProxy clients and the repository (§5.1: "MyProxy clients also require
// mutual authentication of the repository"). GSI-specific chain rules
// (proxy certificates) are not expressible in stock X.509 path validation,
// so this layer transports the peer's full certificate chain and leaves the
// trust decision to pki::TrustStore::verify — exactly how GSI layers on
// SSL "without modification".
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gsi/credential.hpp"
#include "net/channel.hpp"
#include "net/socket.hpp"
#include "pki/certificate.hpp"

using SSL_CTX = struct ssl_ctx_st;
using SSL_SESSION = struct ssl_session_st;

namespace myproxy::tls {

/// A resumable TLS session handle (reference-counted SSL_SESSION). Clients
/// capture one after a connection's reads have processed the server's
/// session tickets, and pass it to TlsChannel::connect to skip the full
/// handshake on the next connection (the portal's many-short-connections
/// workload, paper §3.2).
class TlsSession {
 public:
  TlsSession() = default;

  [[nodiscard]] bool valid() const noexcept { return session_ != nullptr; }
  [[nodiscard]] SSL_SESSION* native() const noexcept {
    return session_.get();
  }

  /// Adopt an SSL_SESSION (takes one reference).
  static TlsSession adopt(SSL_SESSION* session);

 private:
  std::shared_ptr<SSL_SESSION> session_;
};

/// Whether the peer must present a certificate. GSI connections require
/// mutual authentication; the portal's browser-facing HTTPS (§5.2) is
/// server-auth only, since 2001-era browsers hold no Grid credentials —
/// that asymmetry is the paper's core problem statement.
enum class PeerAuth { kRequired, kNone };

/// Server-side session resumption policy. When enabled, the accepting
/// context issues session tickets *on demand* (TlsChannel::arm_session_
/// ticket, called only after the application has verified the peer's GSI
/// chain) and recovers the application data sealed into a ticket when a
/// client resumes. Tickets are encrypted and authenticated under the
/// process's ticket key, so the recovered appdata is exactly what this
/// server wrote at full-handshake time.
struct SessionResumption {
  bool enabled = false;
  /// Ticket/session lifetime; resumption after this requires a full
  /// handshake. Application appdata should carry its own expiry too
  /// (credentials outlive or underlive TLS state independently).
  std::chrono::seconds timeout{3600};
};

/// Holds an SSL_CTX configured with a credential (certificate, key, chain).
/// One context is typically shared by many channels.
class TlsContext {
 public:
  /// Build a context presenting `credential` to peers. Works for both the
  /// connecting and accepting role. Peer certificates (when required) are
  /// accepted unconditionally at the TLS layer — callers must pass the
  /// peer chain to TrustStore::verify before trusting the connection.
  static TlsContext make(const gsi::Credential& credential,
                         PeerAuth peer_auth = PeerAuth::kRequired,
                         const SessionResumption& resumption = {});

  /// Context with no credential at all — a browser-like client that can
  /// authenticate the server but presents nothing itself.
  static TlsContext anonymous_client();

  [[nodiscard]] SSL_CTX* native() const noexcept { return ctx_.get(); }

 private:
  std::shared_ptr<SSL_CTX> ctx_;
};

/// Progress of an incremental TLS operation on a non-blocking socket:
/// finished, or waiting for the socket to become readable / writable (the
/// reactor maps these onto epoll interest).
enum class IoWant { kDone, kRead, kWrite };

/// One TLS connection, implementing the framed message Channel.
class TlsChannel final : public net::Channel {
 public:
  /// Run the accepting-side handshake over `socket`. A non-zero
  /// `handshake_timeout` arms read/write deadlines on the socket first, so
  /// a peer that connects and never speaks TLS raises IoTimeout instead of
  /// pinning the calling thread forever. The deadlines stay armed after the
  /// handshake until set_deadlines() changes them.
  static std::unique_ptr<TlsChannel> accept(
      const TlsContext& context, net::Socket socket,
      std::chrono::milliseconds handshake_timeout = {});

  /// Run the connecting-side handshake over `socket`; `handshake_timeout`
  /// as in accept(). A valid `resume` session is offered to the server —
  /// check resumed() afterwards to see whether it was honoured (a server
  /// that lost or expired the session silently falls back to a full
  /// handshake; the connection still succeeds).
  static std::unique_ptr<TlsChannel> connect(
      const TlsContext& context, net::Socket socket,
      std::chrono::milliseconds handshake_timeout = {},
      const TlsSession* resume = nullptr);

  /// Begin an accepting-side handshake WITHOUT running it: wraps `socket`
  /// (which the caller has made non-blocking) and prepares the TLS state.
  /// Drive the handshake to completion with handshake_step(); peer_chain()
  /// is populated only once that returns IoWant::kDone.
  static std::unique_ptr<TlsChannel> accept_async(const TlsContext& context,
                                                  net::Socket socket);

  /// Advance a non-blocking handshake by one step. kDone means the
  /// handshake finished (peer chain collected); kRead/kWrite mean the
  /// caller must wait for that readiness and call again. Throws IoError on
  /// handshake failure — never IoTimeout (deadlines are the caller's timer).
  [[nodiscard]] IoWant handshake_step();

  /// Incrementally receive one framed message on a non-blocking socket.
  /// kDone: `out` holds the complete message. kRead/kWrite: wait for that
  /// readiness and call again (partial input is buffered internally).
  /// Reads never cross a frame boundary, so switching back to blocking
  /// receive() after kDone sees a clean stream.
  [[nodiscard]] IoWant receive_step(std::string& out);

  /// Underlying descriptor, for event-loop registration.
  [[nodiscard]] int fd() const noexcept;

  /// Flip the underlying socket back to blocking mode — the reactor hands
  /// the connection to a worker thread once the request has been read, and
  /// the worker path uses blocking I/O with SO_*TIMEO deadlines.
  void make_blocking();

  /// Re-arm the underlying socket deadlines (e.g. switch from handshake to
  /// per-request budgets). Zero clears a deadline.
  void set_deadlines(std::chrono::milliseconds read,
                     std::chrono::milliseconds write);

  ~TlsChannel() override;

  void send(std::string_view message) override;
  [[nodiscard]] std::string receive() override;
  void close() noexcept override;

  /// Peer's certificate chain, leaf first, exactly as presented in the
  /// handshake; empty when the peer authenticated anonymously (browser
  /// side of the portal). Feed to TrustStore::verify for GSI connections.
  [[nodiscard]] const std::vector<pki::Certificate>& peer_chain() const {
    return peer_chain_;
  }

  [[nodiscard]] bool peer_authenticated() const {
    return !peer_chain_.empty();
  }

  /// Negotiated protocol version string ("TLSv1.3"), for logs/benches.
  [[nodiscard]] std::string protocol_version() const;

  /// True when this connection resumed a previous session (abbreviated
  /// handshake) instead of performing a full one.
  [[nodiscard]] bool resumed() const;

  /// Accepting side, after application-layer authentication: seal `appdata`
  /// into a session ticket and queue it for the peer (sent with the next
  /// write). Requires a context built with SessionResumption::enabled;
  /// no-op otherwise. Call at most once per connection.
  void arm_session_ticket(std::string appdata);

  /// Accepting side of a resumed connection: the appdata sealed into the
  /// ticket the client presented; nullopt on full handshakes and on
  /// contexts without resumption.
  [[nodiscard]] const std::optional<std::string>& ticket_appdata() const;

  /// Connecting side: snapshot the current session for later resumption.
  /// Call after at least one receive() so TLS 1.3 tickets (delivered after
  /// the handshake) have been processed. Returns an invalid session when
  /// nothing resumable is available.
  [[nodiscard]] TlsSession session() const;

  /// Opaque connection state; public only so the OpenSSL ticket callbacks
  /// (free functions in the implementation file) can name it.
  struct Impl;

 private:
  /// `handshake_done`: collect the peer chain now (blocking accept/connect
  /// paths) or defer until handshake_step() completes (async path).
  TlsChannel(std::unique_ptr<Impl> impl, bool handshake_done);

  void collect_peer_chain();

  std::unique_ptr<Impl> impl_;
  std::vector<pki::Certificate> peer_chain_;
};

}  // namespace myproxy::tls
