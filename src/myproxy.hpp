// Umbrella header: the public API of the MyProxy library.
//
// Fine-grained includes remain available (and are preferred inside the
// library itself); applications that want everything include this.
//
//   #include "myproxy.hpp"
//
//   myproxy::gsi::Credential proxy = myproxy::gsi::create_proxy(user);
//   myproxy::client::MyProxyClient client(proxy, trust_store, port);
//   client.put("alice", pass_phrase, proxy);
#pragma once

// Substrate
#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/secure_buffer.hpp"

// Crypto & PKI
#include "crypto/key_pair.hpp"
#include "pki/certificate.hpp"
#include "pki/certificate_authority.hpp"
#include "pki/distinguished_name.hpp"
#include "pki/proxy_policy.hpp"
#include "pki/trust_store.hpp"

// GSI
#include "gsi/acl.hpp"
#include "gsi/credential.hpp"
#include "gsi/gridmap.hpp"
#include "gsi/proxy.hpp"

// MyProxy core
#include "client/myproxy_client.hpp"
#include "protocol/message.hpp"
#include "repository/repository.hpp"
#include "server/http_gateway.hpp"
#include "server/myproxy_server.hpp"

// Applications
#include "grid/renewal_service.hpp"
#include "grid/resource_service.hpp"
#include "portal/grid_portal.hpp"
