// One-time-password authentication (paper §5.1/§6.3, citing RFC 2289).
//
// S/KEY-style hash chain over SHA-256: from a client-held secret S, the
// word sequence is w_i = H^i(S) (hex-encoded). The server stores only
// w_N and a counter; the client authenticates with w_{N-1}, which the
// server validates by checking H(w_{N-1}) == stored, then *advances* to
// w_{N-1}. A captured word is useless for replay — the property the paper
// wants in order to drop the HTTPS/pass-phrase replay caveats.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace myproxy::repository {

/// Server-side OTP state for one stored credential.
struct OtpState {
  std::string current_hex;  ///< w_remaining, lower-case hex of SHA-256
  std::uint32_t remaining = 0;  ///< index of current_hex in the chain

  [[nodiscard]] bool exhausted() const noexcept { return remaining == 0; }
};

/// One hash-chain step: hex(SHA-256(input)).
[[nodiscard]] std::string otp_hash(std::string_view input);

/// Initialize a chain of `count` words from `secret`; the server stores the
/// result, the client keeps `secret` and `count`. Throws PolicyError when
/// count == 0.
[[nodiscard]] OtpState otp_initialize(std::string_view secret,
                                      std::uint32_t count);

/// Client side: the i-th word, w_i = H^i(secret). The next valid word for a
/// server at `remaining == n` is otp_word(secret, n - 1).
[[nodiscard]] std::string otp_word(std::string_view secret,
                                   std::uint32_t index);

/// Server side: verify `word` against `state` and advance the chain on
/// success. Returns false (state unchanged) on mismatch or exhaustion.
[[nodiscard]] bool otp_verify_and_advance(OtpState& state,
                                          std::string_view word);

}  // namespace myproxy::repository
