#include "repository/repository.hpp"

#include <algorithm>

#include "common/encoding.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "crypto/random.hpp"
#include "crypto/symmetric.hpp"

namespace myproxy::repository {

namespace {

constexpr std::string_view kLogComponent = "repository";

CredentialInfo to_info(const CredentialRecord& record) {
  CredentialInfo info;
  info.username = record.username;
  info.name = record.name;
  info.owner_dn = record.owner_dn;
  info.created_at = record.created_at;
  info.not_after = record.not_after;
  info.max_delegation_lifetime = record.max_delegation_lifetime;
  info.always_limited = record.always_limited;
  info.sealing = record.sealing;
  info.otp_enabled = record.otp.has_value();
  info.otp_remaining = record.otp.has_value() ? record.otp->remaining : 0;
  info.restriction = record.restriction;
  info.task_tags = record.task_tags;
  info.retriever_patterns = record.retriever_patterns;
  info.renewer_patterns = record.renewer_patterns;
  return info;
}

}  // namespace

Repository::Repository(std::unique_ptr<CredentialStore> store,
                       RepositoryPolicy policy)
    : store_(std::move(store)), policy_(std::move(policy)) {
  if (store_ == nullptr) {
    throw Error(ErrorCode::kInternal, "Repository requires a store");
  }
  master_key_ = SecureBuffer(crypto::random_bytes(crypto::kAesKeySize));
}

std::string Repository::aad_for(std::string_view username,
                                std::string_view name) const {
  // Binds the envelope to its record identity so blobs cannot be
  // transplanted between users or wallet slots on disk.
  return fmt::format("myproxy:{}:{}", username, name);
}

std::string Repository::passphrase_digest_for(std::string_view aad,
                                              std::string_view phrase) {
  return otp_hash(fmt::format("{}:{}", aad, phrase));
}

void Repository::store(std::string_view username,
                       std::string_view pass_phrase,
                       std::string_view owner_dn,
                       const gsi::Credential& credential,
                       const StoreOptions& options) {
  if (username.empty()) throw PolicyError("username must not be empty");
  if (credential.expired()) {
    throw ExpiredError("refusing to store an already-expired credential");
  }
  const Seconds remaining = credential.remaining_lifetime();
  if (!options.long_term && remaining > policy_.max_stored_lifetime) {
    throw PolicyError(fmt::format(
        "stored credential lifetime {} exceeds repository maximum {}",
        format_duration(remaining),
        format_duration(policy_.max_stored_lifetime)));
  }
  policy_.passphrase_policy.check(username, pass_phrase);

  CredentialRecord record;
  record.username = std::string(username);
  record.name = options.name;
  record.owner_dn = std::string(owner_dn);
  record.created_at = now();
  record.not_after = credential.not_after();
  record.max_delegation_lifetime =
      options.max_delegation_lifetime > Seconds(0)
          ? std::min(options.max_delegation_lifetime,
                     policy_.max_delegation_lifetime)
          : policy_.default_delegation_lifetime;
  record.retriever_patterns = options.retriever_patterns;
  record.renewer_patterns = options.renewer_patterns;
  record.always_limited = options.always_limited;
  record.restriction = options.restriction;
  record.task_tags = options.task_tags;

  const SecureBuffer pem = credential.to_pem();
  const std::string aad = aad_for(username, options.name);
  if (options.otp_words > 0) {
    // OTP mode (§6.3): the "pass phrase" seeds the hash chain; the blob is
    // sealed under the repository master key since OTP words rotate.
    record.otp = otp_initialize(pass_phrase, options.otp_words);
    record.sealing = Sealing::kMasterKey;
    record.blob = crypto::aead_seal(master_key_.bytes(), pem.view(), aad);
  } else if (!options.renewer_patterns.empty()) {
    // Renewable credentials (§6.6) must be openable by the server without
    // the user's pass phrase (the user is not present when a long-running
    // job refreshes its proxy), so they are sealed under the master key;
    // pass-phrase retrievals authenticate against a digest.
    record.sealing = Sealing::kMasterKey;
    record.passphrase_digest = passphrase_digest_for(aad, pass_phrase);
    record.blob = crypto::aead_seal(master_key_.bytes(), pem.view(), aad);
  } else if (policy_.encrypt_at_rest) {
    record.sealing = Sealing::kPassphrase;
    record.blob = crypto::passphrase_seal(pass_phrase, pem.view(), aad,
                                          policy_.kdf_iterations);
  } else {
    // Ablation path (bench_at_rest): plaintext record, authentication falls
    // back to a stored digest of the pass phrase.
    record.sealing = Sealing::kPlain;
    record.passphrase_digest = passphrase_digest_for(aad, pass_phrase);
    record.blob = encoding::to_bytes(pem.view());
  }

  store_->put(record);
  log::info(kLogComponent,
            "stored credential user='{}' slot='{}' owner='{}' expires={}",
            username, options.name, owner_dn, format_utc(record.not_after));
}

gsi::Credential Repository::open(std::string_view username,
                                 std::string_view secret,
                                 std::string_view name, bool otp) {
  auto record = store_->get(username, name);
  if (!record.has_value()) {
    throw NotFoundError(fmt::format(
        "no credentials stored for user '{}' slot '{}'", username, name));
  }
  if (record->expired()) {
    throw ExpiredError(fmt::format(
        "stored credential for user '{}' has expired", username));
  }
  const std::string aad = aad_for(username, name);

  if (otp) {
    // Fetch-verify-advance-store must be atomic: two concurrent requests
    // presenting the same word must yield exactly one success, or replay
    // protection evaporates under load.
    const std::scoped_lock lock(otp_mutex_);
    record = store_->get(username, name);  // re-read under the lock
    if (!record.has_value()) {
      throw NotFoundError(fmt::format(
          "no credentials stored for user '{}' slot '{}'", username, name));
    }
    if (!record->otp.has_value() || record->otp->exhausted()) {
      throw AuthenticationError(
          "one-time-password authentication is not armed for this "
          "credential");
    }
    if (!otp_verify_and_advance(*record->otp, secret)) {
      log::warn(kLogComponent, "bad one-time password for user '{}'",
                username);
      throw AuthenticationError("invalid one-time password");
    }
    store_->put(*record);  // persist the advanced chain before releasing
    return unseal(*record, aad);
  }

  // OTP-armed records never fall back to pass-phrase authentication, even
  // once the chain is exhausted.
  if (record->otp.has_value()) {
    throw AuthenticationError(
        "credential requires one-time-password authentication");
  }

  if (record->sealing == Sealing::kPassphrase) {
    try {
      const SecureBuffer pem =
          crypto::passphrase_open(secret, record->blob, aad);
      return gsi::Credential::from_pem(pem.view());
    } catch (const VerificationError&) {
      // Decryption failure == wrong pass phrase (§5.1: the envelope *is*
      // the authentication check).
      log::warn(kLogComponent, "bad pass phrase for user '{}'", username);
      throw AuthenticationError("invalid pass phrase");
    }
  }

  // Master-key / plaintext records: check the stored pass-phrase digest.
  if (!record->passphrase_digest.has_value() ||
      !strings::constant_time_equals(*record->passphrase_digest,
                                     passphrase_digest_for(aad, secret))) {
    log::warn(kLogComponent, "bad pass phrase for user '{}'", username);
    throw AuthenticationError("invalid pass phrase");
  }
  return unseal(*record, aad);
}

gsi::Credential Repository::open_for_renewal(std::string_view username,
                                             std::string_view name) {
  auto record = store_->get(username, name);
  if (!record.has_value()) {
    throw NotFoundError(fmt::format(
        "no credentials stored for user '{}' slot '{}'", username, name));
  }
  if (record->expired()) {
    throw ExpiredError(fmt::format(
        "stored credential for user '{}' has expired", username));
  }
  if (record->renewer_patterns.empty()) {
    throw AuthorizationError(
        "stored credential was not marked renewable at store time");
  }
  return unseal(*record, aad_for(username, name));
}

gsi::Credential Repository::unseal(const CredentialRecord& record,
                                   std::string_view aad) const {
  switch (record.sealing) {
    case Sealing::kMasterKey: {
      const SecureBuffer pem =
          crypto::aead_open(master_key_.bytes(), record.blob, aad);
      return gsi::Credential::from_pem(pem.view());
    }
    case Sealing::kPlain:
      return gsi::Credential::from_pem(encoding::to_string(record.blob));
    case Sealing::kPassphrase:
      break;
  }
  throw Error(ErrorCode::kInternal,
              "unseal called on a pass-phrase-sealed record");
}

std::optional<CredentialInfo> Repository::info(std::string_view username,
                                               std::string_view name) const {
  const auto record = store_->get(username, name);
  if (!record.has_value()) return std::nullopt;
  return to_info(*record);
}

std::vector<CredentialInfo> Repository::list(std::string_view username) const {
  std::vector<CredentialInfo> out;
  for (const auto& record : store_->list(username)) {
    out.push_back(to_info(record));
  }
  std::sort(out.begin(), out.end(),
            [](const CredentialInfo& a, const CredentialInfo& b) {
              return a.name < b.name;
            });
  return out;
}

std::optional<CredentialInfo> Repository::select_for_task(
    std::string_view username, std::string_view task) const {
  // §6.2: the wallet picks the credential whose tags cover the task.
  std::optional<CredentialInfo> fallback;
  for (const auto& info : list(username)) {
    if (info.name.empty()) fallback = info;
    for (const auto& tag : strings::split_trimmed(info.task_tags, ',')) {
      if (tag == task) return info;
    }
  }
  return fallback;
}

std::size_t Repository::destroy(std::string_view username,
                                std::string_view name, bool all) {
  const std::size_t removed =
      all ? store_->remove_all(username)
          : static_cast<std::size_t>(store_->remove(username, name) ? 1 : 0);
  if (removed > 0) {
    log::info(kLogComponent, "destroyed {} credential(s) for user '{}'",
              removed, username);
  }
  return removed;
}

void Repository::change_passphrase(std::string_view username,
                                   std::string_view old_phrase,
                                   std::string_view new_phrase,
                                   std::string_view name) {
  policy_.passphrase_policy.check(username, new_phrase);
  // Authenticate with the old phrase by opening, then re-seal.
  const gsi::Credential credential = open(username, old_phrase, name);
  auto record = store_->get(username, name);
  if (!record.has_value()) {
    throw NotFoundError("credential vanished during pass-phrase change");
  }
  const SecureBuffer pem = credential.to_pem();
  const std::string aad = aad_for(username, name);
  switch (record->sealing) {
    case Sealing::kPassphrase:
      record->blob = crypto::passphrase_seal(new_phrase, pem.view(), aad,
                                             policy_.kdf_iterations);
      break;
    case Sealing::kMasterKey:
    case Sealing::kPlain:
      record->passphrase_digest = passphrase_digest_for(aad, new_phrase);
      break;
  }
  store_->put(*record);
  log::info(kLogComponent, "pass phrase changed for user '{}'", username);
}

std::optional<CredentialRecord> Repository::record(
    std::string_view username, std::string_view name) const {
  return store_->get(username, name);
}

}  // namespace myproxy::repository
