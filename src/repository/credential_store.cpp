#include "repository/credential_store.hpp"

#include <fstream>
#include <sstream>

#include "common/encoding.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/strings.hpp"

namespace myproxy::repository {

namespace {

void append_line(std::string& out, std::string_view key,
                 std::string_view value) {
  if (value.find('\n') != std::string_view::npos) {
    throw ParseError(fmt::format("record field '{}' contains newline", key));
  }
  out += key;
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string_view to_string(Sealing sealing) noexcept {
  switch (sealing) {
    case Sealing::kPassphrase:
      return "passphrase";
    case Sealing::kMasterKey:
      return "master-key";
    case Sealing::kPlain:
      return "plain";
  }
  return "?";
}

Sealing sealing_from_string(std::string_view text) {
  if (text == "passphrase") return Sealing::kPassphrase;
  if (text == "master-key") return Sealing::kMasterKey;
  if (text == "plain") return Sealing::kPlain;
  throw ParseError(fmt::format("unknown sealing mode '{}'", text));
}

std::string CredentialRecord::serialize() const {
  std::string out = "myproxy-record-v1\n";
  append_line(out, "username", encoding::base64_encode(username));
  append_line(out, "name", encoding::base64_encode(name));
  append_line(out, "owner_dn", owner_dn);
  append_line(out, "sealing", to_string(sealing));
  if (passphrase_digest.has_value()) {
    append_line(out, "passphrase_digest", *passphrase_digest);
  }
  append_line(out, "created_at", std::to_string(to_unix(created_at)));
  append_line(out, "not_after", std::to_string(to_unix(not_after)));
  append_line(out, "max_delegation_lifetime",
              std::to_string(max_delegation_lifetime.count()));
  for (const auto& pattern : retriever_patterns) {
    append_line(out, "retriever", pattern);
  }
  for (const auto& pattern : renewer_patterns) {
    append_line(out, "renewer", pattern);
  }
  if (always_limited) append_line(out, "always_limited", "1");
  if (restriction.has_value()) append_line(out, "restriction", *restriction);
  if (!task_tags.empty()) append_line(out, "task_tags", task_tags);
  if (otp.has_value()) {
    append_line(out, "otp_current", otp->current_hex);
    append_line(out, "otp_remaining", std::to_string(otp->remaining));
  }
  append_line(out, "blob", encoding::base64_encode(blob));
  return out;
}

CredentialRecord CredentialRecord::parse(std::string_view text) {
  const auto lines = strings::split(text, '\n');
  if (lines.empty() || strings::trim(lines[0]) != "myproxy-record-v1") {
    throw ParseError("credential record missing version header");
  }
  CredentialRecord record;
  std::optional<std::string> otp_current;
  std::optional<std::uint32_t> otp_remaining;
  bool have_blob = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // Do not trim the whole line: a field value may legitimately be empty
    // (e.g. the default wallet slot's base64-encoded "" name).
    std::string_view line = lines[i];
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (strings::trim(line).empty()) continue;
    const std::size_t space = line.find(' ');
    const std::string_view key =
        space == std::string_view::npos ? line : line.substr(0, space);
    const std::string_view value =
        space == std::string_view::npos ? std::string_view{}
                                        : line.substr(space + 1);
    if (key == "username") {
      record.username = encoding::base64_decode_string(value);
    } else if (key == "name") {
      record.name = encoding::base64_decode_string(value);
    } else if (key == "owner_dn") {
      record.owner_dn = value;
    } else if (key == "sealing") {
      record.sealing = sealing_from_string(value);
    } else if (key == "passphrase_digest") {
      record.passphrase_digest = std::string(value);
    } else if (key == "created_at") {
      record.created_at = from_unix(std::stoll(std::string(value)));
    } else if (key == "not_after") {
      record.not_after = from_unix(std::stoll(std::string(value)));
    } else if (key == "max_delegation_lifetime") {
      record.max_delegation_lifetime = Seconds(std::stoll(std::string(value)));
    } else if (key == "retriever") {
      record.retriever_patterns.emplace_back(value);
    } else if (key == "renewer") {
      record.renewer_patterns.emplace_back(value);
    } else if (key == "always_limited") {
      record.always_limited = (value == "1");
    } else if (key == "restriction") {
      record.restriction = std::string(value);
    } else if (key == "task_tags") {
      record.task_tags = value;
    } else if (key == "otp_current") {
      otp_current = std::string(value);
    } else if (key == "otp_remaining") {
      otp_remaining = static_cast<std::uint32_t>(std::stoul(std::string(value)));
    } else if (key == "blob") {
      record.blob = encoding::base64_decode(value);
      have_blob = true;
    } else {
      throw ParseError(fmt::format("unknown record field '{}'", key));
    }
  }
  if (!have_blob) throw ParseError("credential record missing blob");
  if (otp_current.has_value() != otp_remaining.has_value()) {
    throw ParseError("credential record has partial OTP state");
  }
  if (otp_current.has_value()) {
    record.otp = OtpState{*otp_current, *otp_remaining};
  }
  return record;
}

// --- MemoryCredentialStore --------------------------------------------------

void MemoryCredentialStore::put(const CredentialRecord& record) {
  const std::scoped_lock lock(mutex_);
  records_[record.key()] = record;
}

std::optional<CredentialRecord> MemoryCredentialStore::get(
    std::string_view username, std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const std::string key =
      std::string(username) + "\x1e" + std::string(name);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool MemoryCredentialStore::remove(std::string_view username,
                                   std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const std::string key =
      std::string(username) + "\x1e" + std::string(name);
  return records_.erase(key) != 0;
}

std::size_t MemoryCredentialStore::remove_all(std::string_view username) {
  const std::scoped_lock lock(mutex_);
  std::size_t removed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.username == username) {
      it = records_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<CredentialRecord> MemoryCredentialStore::list(
    std::string_view username) const {
  const std::scoped_lock lock(mutex_);
  std::vector<CredentialRecord> out;
  for (const auto& [key, record] : records_) {
    if (record.username == username) out.push_back(record);
  }
  return out;
}

std::size_t MemoryCredentialStore::size() const {
  const std::scoped_lock lock(mutex_);
  return records_.size();
}

std::size_t MemoryCredentialStore::sweep_expired() {
  const std::scoped_lock lock(mutex_);
  std::size_t swept = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.expired()) {
      it = records_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  return swept;
}

// --- FileCredentialStore ----------------------------------------------------

FileCredentialStore::FileCredentialStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw IoError(fmt::format("cannot create storage directory {}: {}",
                              directory_.string(), ec.message()));
  }
  // Restrict to the owner, as the original server does for its repository
  // directory.
  std::filesystem::permissions(directory_,
                               std::filesystem::perms::owner_all,
                               std::filesystem::perm_options::replace, ec);
}

std::filesystem::path FileCredentialStore::record_path(
    std::string_view username, std::string_view name) const {
  // Hex-encode to keep arbitrary usernames file-system safe.
  const std::string base = fmt::format(
      "{}-{}.cred",
      encoding::hex_encode(encoding::to_bytes(username)),
      encoding::hex_encode(encoding::to_bytes(name)));
  return directory_ / base;
}

void FileCredentialStore::put(const CredentialRecord& record) {
  const std::scoped_lock lock(mutex_);
  const auto path = record_path(record.username, record.name);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError(fmt::format("cannot write {}", tmp));
    out << record.serialize();
    if (!out.flush()) throw IoError(fmt::format("flush failed for {}", tmp));
  }
  std::error_code ec;
  std::filesystem::permissions(
      tmp,
      std::filesystem::perms::owner_read | std::filesystem::perms::owner_write,
      std::filesystem::perm_options::replace, ec);
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw IoError(fmt::format("cannot commit record {}: {}", path.string(),
                              ec.message()));
  }
}

std::optional<CredentialRecord> FileCredentialStore::get(
    std::string_view username, std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto path = record_path(username, name);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return CredentialRecord::parse(text.str());
}

bool FileCredentialStore::remove(std::string_view username,
                                 std::string_view name) {
  const std::scoped_lock lock(mutex_);
  std::error_code ec;
  return std::filesystem::remove(record_path(username, name), ec) && !ec;
}

std::size_t FileCredentialStore::remove_all(std::string_view username) {
  const std::scoped_lock lock(mutex_);
  const std::string prefix =
      encoding::hex_encode(encoding::to_bytes(username)) + "-";
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().filename().string().starts_with(prefix)) {
      if (std::filesystem::remove(entry.path(), ec) && !ec) ++removed;
    }
  }
  return removed;
}

std::vector<CredentialRecord> FileCredentialStore::list(
    std::string_view username) const {
  const std::scoped_lock lock(mutex_);
  const std::string prefix =
      encoding::hex_encode(encoding::to_bytes(username)) + "-";
  std::vector<CredentialRecord> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.path().filename().string().starts_with(prefix)) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();
    out.push_back(CredentialRecord::parse(text.str()));
  }
  return out;
}

std::size_t FileCredentialStore::size() const {
  const std::scoped_lock lock(mutex_);
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".cred") ++count;
  }
  return count;
}

std::size_t FileCredentialStore::sweep_expired() {
  const std::scoped_lock lock(mutex_);
  std::size_t swept = 0;
  std::error_code ec;
  std::vector<std::filesystem::path> doomed;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() != ".cred") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();
    try {
      if (CredentialRecord::parse(text.str()).expired()) {
        doomed.push_back(entry.path());
      }
    } catch (const Error&) {
      // Unreadable record: leave it for operator inspection.
    }
  }
  for (const auto& path : doomed) {
    if (std::filesystem::remove(path, ec) && !ec) ++swept;
  }
  return swept;
}

}  // namespace myproxy::repository
