#include "repository/credential_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/encoding.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace myproxy::repository {

namespace {

constexpr std::string_view kLogComponent = "store";
constexpr std::string_view kLayoutMarker = "shard-layout";
constexpr std::string_view kLayoutTag = "myproxy-shard-layout-v1";

void append_line(std::string& out, std::string_view key,
                 std::string_view value) {
  if (value.find('\n') != std::string_view::npos) {
    throw ParseError(fmt::format("record field '{}' contains newline", key));
  }
  out += key;
  out += ' ';
  out += value;
  out += '\n';
}

/// Stable across processes and platforms — the on-disk shard of a username
/// must never depend on the run-time behaviour of std::hash. The cluster
/// layer partitions usernames with the same function (strings::fnv1a64).
using strings::fnv1a64;

/// Two lowercase hex digits per shard index ("00".."ff"; wider only past a
/// 256-way fanout). myproxy::fmt has no width/zero-pad specs, so spell it out.
std::string shard_dir_name(std::size_t index) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string name;
  for (std::size_t v = index; v != 0; v /= 16) {
    name.insert(name.begin(), kDigits[v % 16]);
  }
  while (name.size() < 2) name.insert(name.begin(), '0');
  return name;
}

/// Hex-encode to keep arbitrary usernames file-system safe. Shared by the
/// flat and sharded layouts, which is what makes migration a rename.
std::string record_file_name(std::string_view username,
                             std::string_view name) {
  return fmt::format("{}-{}.cred",
                     encoding::hex_encode(encoding::to_bytes(username)),
                     encoding::hex_encode(encoding::to_bytes(name)));
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Write record text to a fresh owner-only temp file.
void write_record_file(const std::filesystem::path& tmp,
                       const CredentialRecord& record) {
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError(fmt::format("cannot write {}", tmp.string()));
    out << record.serialize();
    if (!out.flush()) {
      throw IoError(fmt::format("flush failed for {}", tmp.string()));
    }
  }
  std::error_code ec;
  std::filesystem::permissions(
      tmp,
      std::filesystem::perms::owner_read | std::filesystem::perms::owner_write,
      std::filesystem::perm_options::replace, ec);
}

void make_private_directory(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError(fmt::format("cannot create storage directory {}: {}",
                              dir.string(), ec.message()));
  }
  // Restrict to the owner, as the original server does for its repository
  // directory.
  std::filesystem::permissions(dir, std::filesystem::perms::owner_all,
                               std::filesystem::perm_options::replace, ec);
}

}  // namespace

std::string_view to_string(Sealing sealing) noexcept {
  switch (sealing) {
    case Sealing::kPassphrase:
      return "passphrase";
    case Sealing::kMasterKey:
      return "master-key";
    case Sealing::kPlain:
      return "plain";
  }
  return "?";
}

Sealing sealing_from_string(std::string_view text) {
  if (text == "passphrase") return Sealing::kPassphrase;
  if (text == "master-key") return Sealing::kMasterKey;
  if (text == "plain") return Sealing::kPlain;
  throw ParseError(fmt::format("unknown sealing mode '{}'", text));
}

std::string_view to_string(SyncMode mode) noexcept {
  switch (mode) {
    case SyncMode::kNone:
      return "none";
    case SyncMode::kFsync:
      return "fsync";
    case SyncMode::kGroup:
      return "group";
  }
  return "?";
}

SyncMode sync_mode_from_string(std::string_view text) {
  if (text == "none") return SyncMode::kNone;
  if (text == "fsync") return SyncMode::kFsync;
  if (text == "group") return SyncMode::kGroup;
  throw ParseError(
      fmt::format("unknown sync mode '{}' (none|fsync|group)", text));
}

std::string CredentialRecord::make_key(std::string_view username,
                                       std::string_view name) {
  std::string key;
  key.reserve(username.size() + 1 + name.size());
  key.append(username);
  key.push_back('\x1e');
  key.append(name);
  return key;
}

std::string CredentialRecord::serialize() const {
  std::string out = "myproxy-record-v1\n";
  append_line(out, "username", encoding::base64_encode(username));
  append_line(out, "name", encoding::base64_encode(name));
  append_line(out, "owner_dn", owner_dn);
  append_line(out, "sealing", to_string(sealing));
  if (passphrase_digest.has_value()) {
    append_line(out, "passphrase_digest", *passphrase_digest);
  }
  append_line(out, "created_at", std::to_string(to_unix(created_at)));
  append_line(out, "not_after", std::to_string(to_unix(not_after)));
  append_line(out, "max_delegation_lifetime",
              std::to_string(max_delegation_lifetime.count()));
  for (const auto& pattern : retriever_patterns) {
    append_line(out, "retriever", pattern);
  }
  for (const auto& pattern : renewer_patterns) {
    append_line(out, "renewer", pattern);
  }
  if (always_limited) append_line(out, "always_limited", "1");
  if (restriction.has_value()) append_line(out, "restriction", *restriction);
  if (!task_tags.empty()) append_line(out, "task_tags", task_tags);
  if (otp.has_value()) {
    append_line(out, "otp_current", otp->current_hex);
    append_line(out, "otp_remaining", std::to_string(otp->remaining));
  }
  append_line(out, "blob", encoding::base64_encode(blob));
  return out;
}

namespace {

/// Strict numeric record field: "12abc" or a stray sign is a corrupt
/// record, not a number to salvage.
std::int64_t record_i64(std::string_view key, std::string_view value) {
  const auto parsed = strings::parse_i64(value);
  if (!parsed.has_value()) {
    throw ParseError(fmt::format(
        "credential record field '{}' is not a number: '{}'", key, value));
  }
  return *parsed;
}

std::uint64_t record_u64(std::string_view key, std::string_view value) {
  const auto parsed = strings::parse_u64(value);
  if (!parsed.has_value()) {
    throw ParseError(fmt::format(
        "credential record field '{}' is not a number: '{}'", key, value));
  }
  return *parsed;
}

}  // namespace

CredentialRecord CredentialRecord::parse(std::string_view text) {
  const auto lines = strings::split(text, '\n');
  if (lines.empty() || strings::trim(lines[0]) != "myproxy-record-v1") {
    throw ParseError("credential record missing version header");
  }
  CredentialRecord record;
  std::optional<std::string> otp_current;
  std::optional<std::uint32_t> otp_remaining;
  bool have_blob = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // Do not trim the whole line: a field value may legitimately be empty
    // (e.g. the default wallet slot's base64-encoded "" name).
    std::string_view line = lines[i];
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (strings::trim(line).empty()) continue;
    const std::size_t space = line.find(' ');
    const std::string_view key =
        space == std::string_view::npos ? line : line.substr(0, space);
    const std::string_view value =
        space == std::string_view::npos ? std::string_view{}
                                        : line.substr(space + 1);
    if (key == "username") {
      record.username = encoding::base64_decode_string(value);
    } else if (key == "name") {
      record.name = encoding::base64_decode_string(value);
    } else if (key == "owner_dn") {
      record.owner_dn = value;
    } else if (key == "sealing") {
      record.sealing = sealing_from_string(value);
    } else if (key == "passphrase_digest") {
      record.passphrase_digest = std::string(value);
    } else if (key == "created_at") {
      record.created_at = from_unix(record_i64(key, value));
    } else if (key == "not_after") {
      record.not_after = from_unix(record_i64(key, value));
    } else if (key == "max_delegation_lifetime") {
      record.max_delegation_lifetime = Seconds(record_i64(key, value));
    } else if (key == "retriever") {
      record.retriever_patterns.emplace_back(value);
    } else if (key == "renewer") {
      record.renewer_patterns.emplace_back(value);
    } else if (key == "always_limited") {
      record.always_limited = (value == "1");
    } else if (key == "restriction") {
      record.restriction = std::string(value);
    } else if (key == "task_tags") {
      record.task_tags = value;
    } else if (key == "otp_current") {
      otp_current = std::string(value);
    } else if (key == "otp_remaining") {
      otp_remaining = static_cast<std::uint32_t>(record_u64(key, value));
    } else if (key == "blob") {
      record.blob = encoding::base64_decode(value);
      have_blob = true;
    } else {
      throw ParseError(fmt::format("unknown record field '{}'", key));
    }
  }
  if (!have_blob) throw ParseError("credential record missing blob");
  if (otp_current.has_value() != otp_remaining.has_value()) {
    throw ParseError("credential record has partial OTP state");
  }
  if (otp_current.has_value()) {
    record.otp = OtpState{*otp_current, *otp_remaining};
  }
  return record;
}

// --- MemoryCredentialStore --------------------------------------------------

void MemoryCredentialStore::put(const CredentialRecord& record) {
  const std::scoped_lock lock(mutex_);
  records_[record.key()] = record;
}

std::optional<CredentialRecord> MemoryCredentialStore::get(
    std::string_view username, std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = records_.find(CredentialRecord::make_key(username, name));
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool MemoryCredentialStore::remove(std::string_view username,
                                   std::string_view name) {
  const std::scoped_lock lock(mutex_);
  return records_.erase(CredentialRecord::make_key(username, name)) != 0;
}

std::size_t MemoryCredentialStore::remove_all(std::string_view username) {
  const std::scoped_lock lock(mutex_);
  std::size_t removed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.username == username) {
      it = records_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<CredentialRecord> MemoryCredentialStore::list(
    std::string_view username) const {
  const std::scoped_lock lock(mutex_);
  std::vector<CredentialRecord> out;
  for (const auto& [key, record] : records_) {
    if (record.username == username) out.push_back(record);
  }
  return out;
}

std::size_t MemoryCredentialStore::size() const {
  const std::scoped_lock lock(mutex_);
  return records_.size();
}

std::size_t MemoryCredentialStore::sweep_expired() {
  const std::scoped_lock lock(mutex_);
  std::size_t swept = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.expired()) {
      it = records_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  return swept;
}

std::vector<std::string> MemoryCredentialStore::usernames() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [key, record] : records_) {
    if (out.empty() || out.back() != record.username) {
      out.push_back(record.username);
    }
  }
  return out;
}

// --- FlatFileCredentialStore ------------------------------------------------

FlatFileCredentialStore::FlatFileCredentialStore(
    std::filesystem::path directory)
    : directory_(std::move(directory)) {
  make_private_directory(directory_);
}

std::filesystem::path FlatFileCredentialStore::record_path(
    std::string_view username, std::string_view name) const {
  return directory_ / record_file_name(username, name);
}

void FlatFileCredentialStore::put(const CredentialRecord& record) {
  const std::scoped_lock lock(mutex_);
  const auto path = record_path(record.username, record.name);
  const auto tmp = std::filesystem::path(path.string() + ".tmp");
  write_record_file(tmp, record);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw IoError(fmt::format("cannot commit record {}: {}", path.string(),
                              ec.message()));
  }
}

std::optional<CredentialRecord> FlatFileCredentialStore::get(
    std::string_view username, std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto text = read_file(record_path(username, name));
  if (!text.has_value()) return std::nullopt;
  return CredentialRecord::parse(*text);
}

bool FlatFileCredentialStore::remove(std::string_view username,
                                     std::string_view name) {
  const std::scoped_lock lock(mutex_);
  std::error_code ec;
  return std::filesystem::remove(record_path(username, name), ec) && !ec;
}

std::size_t FlatFileCredentialStore::remove_all(std::string_view username) {
  const std::scoped_lock lock(mutex_);
  const std::string prefix =
      encoding::hex_encode(encoding::to_bytes(username)) + "-";
  std::size_t removed = 0;
  try {
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_)) {
      if (!entry.path().filename().string().starts_with(prefix)) continue;
      std::error_code ec;
      if (!std::filesystem::remove(entry.path(), ec)) continue;
      if (ec) {
        throw IoError(fmt::format("cannot remove record {}: {}",
                                  entry.path().string(), ec.message()));
      }
      ++removed;
    }
  } catch (const std::filesystem::filesystem_error& e) {
    // A partial result here would silently leave the user's records behind
    // after a DESTROY --all.
    throw IoError(fmt::format("cannot iterate storage directory {}: {}",
                              directory_.string(), e.what()));
  }
  return removed;
}

std::vector<CredentialRecord> FlatFileCredentialStore::list(
    std::string_view username) const {
  const std::scoped_lock lock(mutex_);
  const std::string prefix =
      encoding::hex_encode(encoding::to_bytes(username)) + "-";
  std::vector<CredentialRecord> out;
  try {
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_)) {
      if (!entry.path().filename().string().starts_with(prefix)) continue;
      const auto text = read_file(entry.path());
      if (!text.has_value()) continue;
      out.push_back(CredentialRecord::parse(*text));
    }
  } catch (const std::filesystem::filesystem_error& e) {
    throw IoError(fmt::format("cannot iterate storage directory {}: {}",
                              directory_.string(), e.what()));
  }
  return out;
}

std::size_t FlatFileCredentialStore::size() const {
  const std::scoped_lock lock(mutex_);
  std::size_t count = 0;
  try {
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_)) {
      if (entry.path().extension() == ".cred") ++count;
    }
  } catch (const std::filesystem::filesystem_error& e) {
    throw IoError(fmt::format("cannot iterate storage directory {}: {}",
                              directory_.string(), e.what()));
  }
  return count;
}

std::size_t FlatFileCredentialStore::sweep_expired() {
  const std::scoped_lock lock(mutex_);
  std::size_t swept = 0;
  std::vector<std::filesystem::path> doomed;
  try {
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_)) {
      if (entry.path().extension() != ".cred") continue;
      const auto text = read_file(entry.path());
      if (!text.has_value()) continue;
      try {
        if (CredentialRecord::parse(*text).expired()) {
          doomed.push_back(entry.path());
        }
      } catch (const Error&) {
        // Unreadable record: leave it for operator inspection.
      }
    }
  } catch (const std::filesystem::filesystem_error& e) {
    throw IoError(fmt::format("cannot iterate storage directory {}: {}",
                              directory_.string(), e.what()));
  }
  for (const auto& path : doomed) {
    std::error_code ec;
    if (std::filesystem::remove(path, ec) && !ec) ++swept;
  }
  return swept;
}

std::vector<std::string> FlatFileCredentialStore::usernames() const {
  const std::scoped_lock lock(mutex_);
  std::set<std::string> unique;
  try {
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_)) {
      if (entry.path().extension() != ".cred") continue;
      const std::string file = entry.path().filename().string();
      const std::size_t dash = file.find('-');
      if (dash == std::string::npos) continue;
      try {
        unique.insert(
            encoding::to_string(encoding::hex_decode(file.substr(0, dash))));
      } catch (const Error&) {
        // Foreign file name: not one of ours.
      }
    }
  } catch (const std::filesystem::filesystem_error& e) {
    throw IoError(fmt::format("cannot iterate storage directory {}: {}",
                              directory_.string(), e.what()));
  }
  return {unique.begin(), unique.end()};
}

// --- FileCredentialStore ----------------------------------------------------

FileCredentialStore::FileCredentialStore(std::filesystem::path directory,
                                         FileStoreOptions options)
    : directory_(std::move(directory)), sync_mode_(options.sync_mode) {
  make_private_directory(directory_);

  const std::size_t fanout =
      pinned_fanout(std::max<std::size_t>(1, options.shard_count));
  shards_.reserve(fanout);
  for (std::size_t i = 0; i < fanout; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->dir = directory_ / shard_dir_name(i);
    make_private_directory(shard->dir);
    shard->dir_fd =
        ::open(shard->dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (shard->dir_fd < 0) {
      throw IoError(fmt::format("cannot open shard directory {}: {}",
                                shard->dir.string(), std::strerror(errno)));
    }
    shards_.push_back(std::move(shard));
  }

  std::size_t scan_threads = options.scan_threads;
  if (scan_threads == 0) {
    scan_threads = std::min<std::size_t>(
        8, std::max<unsigned>(1, std::thread::hardware_concurrency()));
  }
  scan(scan_threads);

  if (scan_report_.indexed > 0 || scan_report_.migrated > 0 ||
      scan_report_.reaped_tmp > 0) {
    log::info(kLogComponent,
              "indexed {} record(s) across {} shard(s) ({} migrated from "
              "the legacy layout, {} orphaned temp file(s) reaped)",
              scan_report_.indexed, shards_.size(), scan_report_.migrated,
              scan_report_.reaped_tmp);
  }
}

FileCredentialStore::~FileCredentialStore() {
  for (const auto& shard : shards_) {
    if (shard->dir_fd >= 0) ::close(shard->dir_fd);
  }
}

FileCredentialStore::Shard& FileCredentialStore::shard_for(
    std::string_view username) const {
  return *shards_[fnv1a64(username) % shards_.size()];
}

std::size_t FileCredentialStore::pinned_fanout(std::size_t configured) {
  const std::filesystem::path marker =
      directory_ / std::string(kLayoutMarker);
  if (const auto text = read_file(marker); text.has_value()) {
    std::istringstream in(*text);
    std::string tag;
    std::string key;
    std::size_t fanout = 0;
    in >> tag >> key >> fanout;
    if (tag != kLayoutTag || key != "fanout" || fanout == 0) {
      throw ParseError(fmt::format("corrupt shard layout marker {}",
                                   marker.string()));
    }
    return fanout;
  }
  // First open of this directory: pin the configured fanout so later opens
  // (possibly with a different config) keep hashing records to the same
  // shard directories.
  std::ofstream out(marker, std::ios::trunc);
  if (!out || !(out << kLayoutTag << " fanout " << configured << '\n')
                   .flush()) {
    throw IoError(
        fmt::format("cannot write layout marker {}", marker.string()));
  }
  std::error_code ec;
  std::filesystem::permissions(
      marker,
      std::filesystem::perms::owner_read | std::filesystem::perms::owner_write,
      std::filesystem::perm_options::replace, ec);
  return configured;
}

void FileCredentialStore::scan(std::size_t scan_threads) {
  // Shared first-error slot: worker tasks must not throw across threads.
  std::mutex error_mutex;
  std::string first_error;
  const auto record_error = [&](std::string message) {
    const std::scoped_lock lock(error_mutex);
    if (first_error.empty()) first_error = std::move(message);
  };
  const auto guarded_index_file = [&](const std::filesystem::path& path) {
    try {
      index_file(path);
    } catch (const Error& e) {
      record_error(e.what());
    }
  };

  std::vector<std::filesystem::path> subdirs;
  std::vector<std::filesystem::path> legacy_records;
  try {
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_)) {
      if (entry.is_directory()) {
        subdirs.push_back(entry.path());
      } else if (entry.path().extension() == ".tmp") {
        // A writer died between temp write and rename-commit; the record
        // was never committed, so the leftover must never be served.
        std::error_code ec;
        std::filesystem::remove(entry.path(), ec);
        ++scan_report_.reaped_tmp;
      } else if (entry.path().extension() == ".cred") {
        legacy_records.push_back(entry.path());
      }
      // Anything else (the layout marker, operator notes) is left alone.
    }
  } catch (const std::filesystem::filesystem_error& e) {
    throw IoError(fmt::format("cannot iterate storage directory {}: {}",
                              directory_.string(), e.what()));
  }

  ThreadPool pool(scan_threads);

  // Phase 1: index every sharded record. Runs before the legacy phase so
  // that when both layouts hold the same (user, slot) the sharded copy —
  // the one the current code wrote — wins.
  for (const auto& dir : subdirs) {
    pool.submit([this, dir, &record_error, &guarded_index_file] {
      try {
        std::vector<std::filesystem::path> files;
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
          if (entry.path().extension() == ".tmp") {
            std::error_code ec;
            std::filesystem::remove(entry.path(), ec);
            const std::scoped_lock lock(scan_mutex_);
            ++scan_report_.reaped_tmp;
          } else if (entry.path().extension() == ".cred") {
            files.push_back(entry.path());
          }
        }
        for (const auto& path : files) guarded_index_file(path);
      } catch (const std::filesystem::filesystem_error& e) {
        record_error(fmt::format("cannot iterate shard directory {}: {}",
                                 dir.string(), e.what()));
      }
    });
  }
  pool.wait_idle();

  // Phase 2: migrate legacy flat-layout records into their shards.
  for (const auto& path : legacy_records) {
    pool.submit([path, &guarded_index_file] { guarded_index_file(path); });
  }
  pool.wait_idle();

  if (!first_error.empty()) throw IoError(first_error);
}

void FileCredentialStore::index_file(const std::filesystem::path& path) {
  const auto text = read_file(path);
  if (!text.has_value()) {
    throw IoError(fmt::format("cannot read record file {}", path.string()));
  }
  CredentialRecord record;
  try {
    record = CredentialRecord::parse(*text);
  } catch (const Error& e) {
    // Unreadable record: leave it for operator inspection, never serve it.
    log::warn(kLogComponent, "skipping unparsable record file {}: {}",
              path.string(), e.what());
    const std::scoped_lock lock(scan_mutex_);
    ++scan_report_.skipped;
    return;
  }

  Shard& shard = shard_for(record.username);
  const std::string file_name =
      record_file_name(record.username, record.name);
  const std::filesystem::path target = shard.dir / file_name;

  std::unique_lock lock(shard.mutex);
  const auto user_it = shard.users.find(record.username);
  const bool already_indexed =
      user_it != shard.users.end() &&
      user_it->second.find(record.name) != user_it->second.end();
  if (path != target) {
    if (already_indexed) {
      // A sharded copy of this (user, slot) exists and is newer than this
      // stray/legacy file; leave the duplicate in place for inspection.
      log::warn(kLogComponent,
                "duplicate record file {} shadows the sharded copy; "
                "leaving it in place",
                path.string());
      lock.unlock();
      const std::scoped_lock report_lock(scan_mutex_);
      ++scan_report_.skipped;
      return;
    }
    std::error_code ec;
    std::filesystem::rename(path, target, ec);
    if (ec) {
      throw IoError(fmt::format("cannot migrate record {} to {}: {}",
                                path.string(), target.string(),
                                ec.message()));
    }
  }
  const bool inserted =
      !already_indexed;
  index_insert(shard, record.username, record.name,
               IndexEntry{file_name, to_unix(record.not_after),
                          record.sealing});
  lock.unlock();

  const std::scoped_lock report_lock(scan_mutex_);
  if (inserted) ++scan_report_.indexed;
  if (path != target) ++scan_report_.migrated;
}

void FileCredentialStore::index_insert(Shard& shard,
                                       const std::string& username,
                                       const std::string& name,
                                       IndexEntry entry) {
  auto& names = shard.users[username];
  const auto it = names.find(name);
  const std::int64_t not_after = entry.not_after;
  if (it != names.end()) {
    erase_expiry(shard, it->second.not_after, username, name);
    it->second = std::move(entry);
  } else {
    names.emplace(name, std::move(entry));
    size_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.by_expiry.emplace(not_after, std::make_pair(username, name));
}

void FileCredentialStore::erase_expiry(Shard& shard, std::int64_t not_after,
                                       std::string_view username,
                                       std::string_view name) {
  const auto [begin, end] = shard.by_expiry.equal_range(not_after);
  for (auto it = begin; it != end; ++it) {
    if (it->second.first == username && it->second.second == name) {
      shard.by_expiry.erase(it);
      return;
    }
  }
}

void FileCredentialStore::sync_file(const std::filesystem::path& path) {
  if (sync_mode_ == SyncMode::kNone) return;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError(fmt::format("cannot open {} for sync: {}", path.string(),
                              std::strerror(errno)));
  }
  try {
    if (sync_mode_ == SyncMode::kGroup) {
      committer_.sync({fd}, /*data_only=*/true);
    } else if (::fdatasync(fd) != 0) {
      throw IoError(fmt::format("fdatasync failed for {}: {}", path.string(),
                                std::strerror(errno)));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void FileCredentialStore::sync_dir(const Shard& shard) {
  if (sync_mode_ == SyncMode::kNone) return;
  if (sync_mode_ == SyncMode::kGroup) {
    committer_.sync({shard.dir_fd}, /*data_only=*/false);
  } else if (::fsync(shard.dir_fd) != 0) {
    throw IoError(fmt::format("fsync failed for shard directory {}: {}",
                              shard.dir.string(), std::strerror(errno)));
  }
}

void FileCredentialStore::put(const CredentialRecord& record) {
  Shard& shard = shard_for(record.username);
  const std::string file_name =
      record_file_name(record.username, record.name);
  const std::filesystem::path path = shard.dir / file_name;
  // Unique temp name: the write and its fdatasync happen *outside* the
  // shard lock (so same-shard writers only serialize on the cheap
  // rename+index step, and group commit can actually batch them), which
  // means concurrent puts of the same key must not share a temp file.
  const std::filesystem::path tmp =
      shard.dir / fmt::format("{}.{}.tmp", file_name,
                              tmp_seq_.fetch_add(1,
                                                 std::memory_order_relaxed));
  write_record_file(tmp, record);
  sync_file(tmp);

  {
    const std::unique_lock lock(shard.mutex);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw IoError(fmt::format("cannot commit record {}: {}", path.string(),
                                ec.message()));
    }
    index_insert(shard, record.username, record.name,
                 IndexEntry{file_name, to_unix(record.not_after),
                            record.sealing});
  }
  // The rename itself must survive a crash before the put counts as
  // committed.
  sync_dir(shard);
}

std::optional<CredentialRecord> FileCredentialStore::get(
    std::string_view username, std::string_view name) const {
  const Shard& shard = shard_for(username);
  const std::shared_lock lock(shard.mutex);
  const auto user_it = shard.users.find(std::string(username));
  if (user_it == shard.users.end()) return std::nullopt;
  const auto it = user_it->second.find(std::string(name));
  if (it == user_it->second.end()) return std::nullopt;
  const auto text = read_file(shard.dir / it->second.file_name);
  if (!text.has_value()) {
    // Indexed but unreadable is store corruption (mutations hold the
    // exclusive lock, so this cannot be a race) — not "no credentials".
    throw IoError(fmt::format("indexed record file {} is unreadable",
                              (shard.dir / it->second.file_name).string()));
  }
  return CredentialRecord::parse(*text);
}

bool FileCredentialStore::remove(std::string_view username,
                                 std::string_view name) {
  Shard& shard = shard_for(username);
  bool removed = false;
  {
    const std::unique_lock lock(shard.mutex);
    const auto user_it = shard.users.find(std::string(username));
    if (user_it == shard.users.end()) return false;
    const auto it = user_it->second.find(std::string(name));
    if (it == user_it->second.end()) return false;
    std::error_code ec;
    std::filesystem::remove(shard.dir / it->second.file_name, ec);
    if (ec) {
      throw IoError(fmt::format("cannot remove record {}: {}",
                                (shard.dir / it->second.file_name).string(),
                                ec.message()));
    }
    erase_expiry(shard, it->second.not_after, username, name);
    user_it->second.erase(it);
    if (user_it->second.empty()) shard.users.erase(user_it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    removed = true;
  }
  sync_dir(shard);
  return removed;
}

std::size_t FileCredentialStore::remove_all(std::string_view username) {
  Shard& shard = shard_for(username);
  std::size_t removed = 0;
  {
    const std::unique_lock lock(shard.mutex);
    const auto user_it = shard.users.find(std::string(username));
    if (user_it == shard.users.end()) return 0;
    for (auto it = user_it->second.begin(); it != user_it->second.end();) {
      std::error_code ec;
      std::filesystem::remove(shard.dir / it->second.file_name, ec);
      if (ec) {
        throw IoError(fmt::format("cannot remove record {}: {}",
                                  (shard.dir / it->second.file_name).string(),
                                  ec.message()));
      }
      erase_expiry(shard, it->second.not_after, username, it->first);
      it = user_it->second.erase(it);
      size_.fetch_sub(1, std::memory_order_relaxed);
      ++removed;
    }
    shard.users.erase(user_it);
  }
  if (removed > 0) sync_dir(shard);
  return removed;
}

std::vector<CredentialRecord> FileCredentialStore::list(
    std::string_view username) const {
  const Shard& shard = shard_for(username);
  const std::shared_lock lock(shard.mutex);
  std::vector<CredentialRecord> out;
  const auto user_it = shard.users.find(std::string(username));
  if (user_it == shard.users.end()) return out;
  out.reserve(user_it->second.size());
  for (const auto& [name, entry] : user_it->second) {
    const auto text = read_file(shard.dir / entry.file_name);
    if (!text.has_value()) {
      throw IoError(fmt::format("indexed record file {} is unreadable",
                                (shard.dir / entry.file_name).string()));
    }
    out.push_back(CredentialRecord::parse(*text));
  }
  return out;
}

std::size_t FileCredentialStore::size() const {
  return size_.load(std::memory_order_relaxed);
}

std::size_t FileCredentialStore::sweep_expired() {
  const std::int64_t now_unix = to_unix(now());
  std::size_t swept = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::size_t shard_swept = 0;
    {
      const std::unique_lock lock(shard.mutex);
      // Only the expired prefix of the expiry map is visited: the sweep is
      // O(expired + shards), not O(total records).
      while (!shard.by_expiry.empty() &&
             shard.by_expiry.begin()->first < now_unix) {
        const auto expiry_it = shard.by_expiry.begin();
        const auto& [username, name] = expiry_it->second;
        const auto user_it = shard.users.find(username);
        if (user_it != shard.users.end()) {
          const auto it = user_it->second.find(name);
          if (it != user_it->second.end()) {
            std::error_code ec;
            std::filesystem::remove(shard.dir / it->second.file_name, ec);
            if (ec) {
              throw IoError(
                  fmt::format("cannot remove expired record {}: {}",
                              (shard.dir / it->second.file_name).string(),
                              ec.message()));
            }
            user_it->second.erase(it);
            if (user_it->second.empty()) shard.users.erase(user_it);
            size_.fetch_sub(1, std::memory_order_relaxed);
            ++shard_swept;
          }
        }
        shard.by_expiry.erase(expiry_it);
      }
    }
    if (shard_swept > 0) sync_dir(shard);
    swept += shard_swept;
  }
  return swept;
}

std::vector<std::string> FileCredentialStore::usernames() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mutex);
    for (const auto& [username, names] : shard->users) {
      out.push_back(username);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace myproxy::repository
