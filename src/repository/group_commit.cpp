#include "repository/group_commit.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/format.hpp"

namespace myproxy::repository {

void GroupCommitter::sync(const std::vector<int>& fds, bool data_only) {
  std::unique_lock lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  ++commits_;
  queue_.reserve(queue_.size() + fds.size());
  for (const int fd : fds) queue_.push_back({fd, data_only});

  while (flushed_ticket_ < ticket) {
    if (!leader_active_) {
      // Become the leader: flush everything enqueued so far as one round.
      leader_active_ = true;
      std::vector<Pending> batch;
      batch.swap(queue_);
      const std::uint64_t batch_high = next_ticket_ - 1;
      lock.unlock();

      // Concurrent writers to one shard enqueue the same directory fd many
      // times; flush it once.
      std::sort(batch.begin(), batch.end(),
                [](const Pending& a, const Pending& b) { return a.fd < b.fd; });
      std::string error;
      int last_fd = -1;
      for (const Pending& pending : batch) {
        if (pending.fd == last_fd) continue;
        last_fd = pending.fd;
        const int rc = pending.data_only ? ::fdatasync(pending.fd)
                                         : ::fsync(pending.fd);
        if (rc != 0 && error.empty()) {
          error = fmt::format("group commit {} failed: {}",
                              pending.data_only ? "fdatasync" : "fsync",
                              std::strerror(errno));
        }
      }

      lock.lock();
      leader_active_ = false;
      ++rounds_;
      flushed_ticket_ = std::max(flushed_ticket_, batch_high);
      if (!error.empty()) {
        // Every writer the round covered must see the failure: none of
        // their data is known durable.
        error_ticket_ = std::max(error_ticket_, batch_high);
        error_ = error;
      }
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  if (ticket <= error_ticket_) {
    throw IoError(error_);
  }
}

std::uint64_t GroupCommitter::rounds() const {
  const std::scoped_lock lock(mutex_);
  return rounds_;
}

std::uint64_t GroupCommitter::commits() const {
  const std::scoped_lock lock(mutex_);
  return commits_;
}

}  // namespace myproxy::repository
