// Read-through cache in front of a CredentialStore.
//
// The portal workload (§3.2) retrieves the same few credentials over and
// over; with FileCredentialStore every GET pays a file read + parse under
// one global mutex. CachedCredentialStore keeps recently read records in
// memory behind sharded locks, so repeat retrievals of the same user hit
// memory and retrievals of different users proceed on different shards.
//
// Consistency: every mutation (put / remove / remove_all / sweep_expired)
// goes to the backing store *while holding the affected shard lock(s)* and
// updates or drops the cached entry before releasing, and a read miss
// fills the cache under the same lock — so a reader can never re-insert a
// record that a concurrent pass-phrase change, OTP advance, or destroy has
// already replaced. Records are cached exactly as the backing store holds
// them: the blob stays inside its at-rest envelope (§5.1), so the cache
// never holds unsealed key material.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "repository/credential_store.hpp"

namespace myproxy::repository {

class CachedCredentialStore final : public CredentialStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;           ///< get() served from memory
    std::uint64_t misses = 0;         ///< get() read the backing store
    std::uint64_t invalidations = 0;  ///< cached entries dropped/replaced
  };

  /// Wraps `backing`. `shards` buckets keys by hash (more shards = less
  /// lock contention); `max_entries_per_shard` bounds memory — a full
  /// shard is cleared before inserting (the workload is a small working
  /// set, so wholesale eviction is simpler than LRU and just as effective).
  explicit CachedCredentialStore(std::unique_ptr<CredentialStore> backing,
                                 std::size_t shards = 8,
                                 std::size_t max_entries_per_shard = 256);

  void put(const CredentialRecord& record) override;
  [[nodiscard]] std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const override;
  bool remove(std::string_view username, std::string_view name) override;
  std::size_t remove_all(std::string_view username) override;
  [[nodiscard]] std::vector<CredentialRecord> list(
      std::string_view username) const override;
  [[nodiscard]] std::size_t size() const override;
  std::size_t sweep_expired() override;
  [[nodiscard]] std::vector<std::string> usernames() const override {
    return backing_->usernames();
  }

  [[nodiscard]] Stats stats() const;

  /// Cached entries currently in memory (tests).
  [[nodiscard]] std::size_t cached_entries() const;

  [[nodiscard]] const CredentialStore& backing() const { return *backing_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, CredentialRecord> entries;
  };

  [[nodiscard]] Shard& shard_for(std::string_view key) const;

  /// Take every shard lock (in index order) for whole-store mutations.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> lock_all() const;

  std::unique_ptr<CredentialStore> backing_;
  const std::size_t max_entries_per_shard_;
  mutable std::vector<Shard> shards_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace myproxy::repository
