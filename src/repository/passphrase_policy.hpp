// Pass-phrase acceptance policy (paper §4.1: the pass phrase "can be tested
// by the repository to make sure they meet any local policy (e.g. the pass
// phrase must be a certain length, survive dictionary checks, etc.)").
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>

namespace myproxy::repository {

class PassphrasePolicy {
 public:
  PassphrasePolicy();

  /// Minimum length; the original MyProxy required 6 characters.
  void set_min_length(std::size_t n) { min_length_ = n; }
  [[nodiscard]] std::size_t min_length() const { return min_length_; }

  /// Extend the rejected-words dictionary.
  void add_dictionary_word(std::string word);

  /// Throws PolicyError with a user-readable reason if `pass_phrase` is
  /// unacceptable for `username`.
  void check(std::string_view username, std::string_view pass_phrase) const;

 private:
  std::size_t min_length_ = 6;
  std::set<std::string, std::less<>> dictionary_;
};

}  // namespace myproxy::repository
