// Group-commit fsync batcher for durable credential writes.
//
// With store_sync_mode=fsync every PUT pays its own fdatasync(tmp) +
// fsync(shard dir) round trip to the platter. Under concurrent PUTs those
// flushes serialize on the device and dominate latency. GroupCommitter
// amortizes them: writers enqueue the descriptors they need durable and
// block; the first writer to arrive becomes the *leader*, drains the whole
// queue (deduplicating descriptors — concurrent PUTs into the same shard
// share one directory fsync), issues the flushes back-to-back, and wakes
// every writer the round covered. Writers that arrive mid-flush form the
// next batch, so a saturated store settles into a pipeline of full rounds.
//
// A writer's call returns only after a completed round covers its ticket,
// so the durability guarantee is identical to the unbatched mode — only
// the syscall count changes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace myproxy::repository {

class GroupCommitter {
 public:
  /// Durably flush `fds`. `data_only` selects fdatasync (file contents —
  /// the record temp file) over fsync (metadata too — the shard directory
  /// whose rename must survive a crash). Blocks until a flush round
  /// covering every fd completes; throws IoError if that round failed.
  void sync(const std::vector<int>& fds, bool data_only);

  /// Flush rounds completed so far (tests/benchmarks: rounds << calls is
  /// the batching win).
  [[nodiscard]] std::uint64_t rounds() const;

  /// sync() calls served so far.
  [[nodiscard]] std::uint64_t commits() const;

 private:
  struct Pending {
    int fd;
    bool data_only;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool leader_active_ = false;
  std::uint64_t next_ticket_ = 1;     ///< ticket handed to the next sync()
  std::uint64_t flushed_ticket_ = 0;  ///< highest ticket covered by a round
  std::uint64_t error_ticket_ = 0;    ///< highest ticket a failed round covered
  std::string error_;
  std::uint64_t rounds_ = 0;
  std::uint64_t commits_ = 0;
};

}  // namespace myproxy::repository
