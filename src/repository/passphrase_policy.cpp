#include "repository/passphrase_policy.hpp"

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/strings.hpp"

namespace myproxy::repository {

PassphrasePolicy::PassphrasePolicy() {
  // A deliberately small built-in dictionary of the classic offenders; site
  // operators extend it via add_dictionary_word / server config.
  for (const char* word :
       {"password", "passphrase", "myproxy", "secret", "qwerty", "letmein",
        "123456", "12345678", "changeme", "grid", "globus"}) {
    dictionary_.insert(word);
  }
}

void PassphrasePolicy::add_dictionary_word(std::string word) {
  dictionary_.insert(strings::to_lower(word));
}

void PassphrasePolicy::check(std::string_view username,
                             std::string_view pass_phrase) const {
  if (pass_phrase.size() < min_length_) {
    throw PolicyError(fmt::format(
        "pass phrase must be at least {} characters", min_length_));
  }
  const std::string lowered = strings::to_lower(pass_phrase);
  if (dictionary_.find(lowered) != dictionary_.end()) {
    throw PolicyError("pass phrase is a common dictionary word");
  }
  if (!username.empty() &&
      lowered.find(strings::to_lower(username)) != std::string::npos) {
    throw PolicyError("pass phrase must not contain the user name");
  }
  // All characters identical ("aaaaaa") defeats the length requirement.
  bool all_same = true;
  for (const char c : pass_phrase) {
    if (c != pass_phrase.front()) {
      all_same = false;
      break;
    }
  }
  if (all_same) {
    throw PolicyError("pass phrase is a single repeated character");
  }
}

}  // namespace myproxy::repository
