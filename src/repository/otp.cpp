#include "repository/otp.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "crypto/digest.hpp"

namespace myproxy::repository {

std::string otp_hash(std::string_view input) {
  return crypto::digest_hex(crypto::HashAlgorithm::kSha256, input);
}

OtpState otp_initialize(std::string_view secret, std::uint32_t count) {
  if (count == 0) {
    throw PolicyError("OTP chain must contain at least one word");
  }
  OtpState state;
  state.remaining = count;
  state.current_hex = otp_word(secret, count);
  return state;
}

std::string otp_word(std::string_view secret, std::uint32_t index) {
  std::string word(secret);
  for (std::uint32_t i = 0; i < index; ++i) word = otp_hash(word);
  return word;
}

bool otp_verify_and_advance(OtpState& state, std::string_view word) {
  if (state.exhausted()) return false;
  // Constant-time compare: OTP words are low-value once used, but the
  // comparison is on the authentication path all the same.
  if (!strings::constant_time_equals(otp_hash(word), state.current_hex)) {
    return false;
  }
  state.current_hex = std::string(word);
  --state.remaining;
  return true;
}

}  // namespace myproxy::repository
