// Repository domain logic: the server-side behaviour of MyProxy (§4, §5.1)
// independent of any transport. The network server (server/) maps protocol
// messages onto these operations after authenticating the caller.
//
// Responsibilities:
//  * store delegated proxies encrypted at rest under the user's pass phrase
//    (§5.1: "the repository encrypts the credentials that it holds with the
//    pass phrase provided by the user");
//  * authenticate retrievals by pass phrase (decryption success) or OTP
//    (§6.3), and enforce the per-credential retrieval restrictions (§4.1);
//  * manage the credential wallet (§6.2) and long-term credentials (§6.1);
//  * expire and destroy credentials (§4.1 myproxy-destroy).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/secure_buffer.hpp"
#include "crypto/kdf.hpp"
#include "gsi/credential.hpp"
#include "repository/credential_store.hpp"
#include "repository/passphrase_policy.hpp"

namespace myproxy::repository {

struct RepositoryPolicy {
  /// Longest lifetime a stored credential may carry (§4.3: "The maximum
  /// lifetime of credentials delegated to the repository is set by policy
  /// on the repository server, but defaults to one week").
  Seconds max_stored_lifetime = kDefaultRepositoryLifetime;

  /// Hard cap on delegations from the repository regardless of what a
  /// credential's own max_delegation_lifetime says.
  Seconds max_delegation_lifetime{24L * 3600};

  /// Used when a GET request does not name a lifetime (§4.3: "a few hours").
  Seconds default_delegation_lifetime = kDefaultDelegatedLifetime;

  /// PBKDF2 cost for the at-rest envelope (swept by bench_at_rest).
  unsigned kdf_iterations = crypto::kDefaultKdfIterations;

  /// Ablation switch: disable at-rest encryption to measure its cost and
  /// demonstrate the §5.1 design choice. Production deployments keep this
  /// on.
  bool encrypt_at_rest = true;

  PassphrasePolicy passphrase_policy;
};

/// What a PUT/STORE attaches to the stored credential.
struct StoreOptions {
  std::string name;  ///< wallet slot (empty = default)
  Seconds max_delegation_lifetime{0};  ///< 0 = server default
  std::vector<std::string> retriever_patterns;
  std::vector<std::string> renewer_patterns;
  bool always_limited = false;
  std::optional<std::string> restriction;
  std::string task_tags;
  /// Number of OTP words to arm instead of pass-phrase auth; 0 = pass
  /// phrase. The pass phrase argument is then the OTP chain *seed*.
  std::uint32_t otp_words = 0;

  /// §6.1 long-term credential: exempt from max_stored_lifetime (which
  /// bounds *delegated proxies*); the record expires with the credential.
  bool long_term = false;
};

/// Metadata view of a stored credential (INFO/LIST responses). Never
/// includes key material.
struct CredentialInfo {
  std::string username;
  std::string name;
  std::string owner_dn;
  TimePoint created_at;
  TimePoint not_after;
  Seconds max_delegation_lifetime{0};
  bool always_limited = false;
  Sealing sealing = Sealing::kPassphrase;
  bool otp_enabled = false;
  std::uint32_t otp_remaining = 0;
  std::optional<std::string> restriction;
  std::string task_tags;
  std::vector<std::string> retriever_patterns;
  std::vector<std::string> renewer_patterns;
};

class Repository {
 public:
  Repository(std::unique_ptr<CredentialStore> store, RepositoryPolicy policy);

  /// PUT: persist `credential` for (`username`), authenticated at retrieval
  /// time by `pass_phrase` (or OTP seeded from it, per options.otp_words).
  /// `owner_dn` is the authenticated Grid identity performing the store.
  /// Throws PolicyError if the pass phrase fails policy or the credential
  /// outlives max_stored_lifetime.
  void store(std::string_view username, std::string_view pass_phrase,
             std::string_view owner_dn, const gsi::Credential& credential,
             const StoreOptions& options = {});

  /// GET/RENEW path: authenticate and decrypt the stored credential.
  /// `otp` selects OTP verification instead of pass-phrase decryption.
  /// Throws AuthenticationError on a bad pass phrase / OTP word,
  /// NotFoundError if absent, ExpiredError if the stored credential
  /// lapsed.
  [[nodiscard]] gsi::Credential open(std::string_view username,
                                     std::string_view secret,
                                     std::string_view name = {},
                                     bool otp = false);

  /// RENEW path (§6.6): open a *renewable* credential without the user's
  /// pass phrase. The caller (server layer) is responsible for having
  /// authorized the renewer against the record's renewer ACL and identity.
  /// Throws AuthorizationError for records not stored as renewable.
  [[nodiscard]] gsi::Credential open_for_renewal(std::string_view username,
                                                 std::string_view name = {});

  /// Record metadata without authentication beyond knowing the name
  /// (server layer gates INFO by the retriever ACL).
  [[nodiscard]] std::optional<CredentialInfo> info(
      std::string_view username, std::string_view name = {}) const;

  [[nodiscard]] std::vector<CredentialInfo> list(
      std::string_view username) const;

  /// Wallet selection (§6.2): the user's credential whose task tags contain
  /// `task`; falls back to the default credential when no tag matches.
  [[nodiscard]] std::optional<CredentialInfo> select_for_task(
      std::string_view username, std::string_view task) const;

  /// DESTROY: remove one slot (empty name) or every credential when
  /// `all` is set. Returns number of records removed.
  std::size_t destroy(std::string_view username, std::string_view name = {},
                      bool all = false);

  /// CHANGE_PASSPHRASE: re-encrypt under the new pass phrase after
  /// authenticating with the old one.
  void change_passphrase(std::string_view username,
                         std::string_view old_phrase,
                         std::string_view new_phrase,
                         std::string_view name = {});

  /// Raw record access for the server layer (ACL evaluation, OTP state).
  [[nodiscard]] std::optional<CredentialRecord> record(
      std::string_view username, std::string_view name = {}) const;

  /// Sweep expired records (run periodically by the server).
  std::size_t sweep_expired() { return store_->sweep_expired(); }

  [[nodiscard]] const RepositoryPolicy& policy() const { return policy_; }
  [[nodiscard]] std::size_t size() const { return store_->size(); }

  /// The backing store (stats sampling, admin tooling).
  [[nodiscard]] const CredentialStore& store() const { return *store_; }

  /// Mutable store access for replication (a replica applies journal
  /// entries and snapshot records directly, below the repository's
  /// authentication layer — the records arrive already sealed).
  [[nodiscard]] CredentialStore& store_mutable() { return *store_; }

 private:
  [[nodiscard]] std::string aad_for(std::string_view username,
                                    std::string_view name) const;
  [[nodiscard]] static std::string passphrase_digest_for(
      std::string_view aad, std::string_view phrase);
  [[nodiscard]] gsi::Credential unseal(const CredentialRecord& record,
                                       std::string_view aad) const;

  std::unique_ptr<CredentialStore> store_;
  RepositoryPolicy policy_;
  /// Serializes OTP fetch-verify-advance-store sequences (replay safety
  /// under concurrent retrievals).
  std::mutex otp_mutex_;
  /// Seals OTP-mode records at rest (pass-phrase sealing is unavailable
  /// because OTP words rotate). Fresh per process: a repository restart
  /// invalidates OTP records, which is the conservative failure mode.
  SecureBuffer master_key_;
};

}  // namespace myproxy::repository
