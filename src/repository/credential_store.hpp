// Storage backends for the credential repository.
//
// A record is one delegated (or long-term, §6.1) credential held on the
// user's behalf, together with the metadata the paper attaches to it:
// owner identity, retrieval restrictions (max delegated lifetime,
// per-credential retriever/renewer ACLs), and the authentication state
// (the at-rest encryption envelope doubles as the pass-phrase check, §5.1;
// OTP chains for §6.3).
//
// Backends: MemoryCredentialStore (tests, benchmarks) and
// FileCredentialStore (one file per record under a storage directory —
// the production layout of the original myproxy-server).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "repository/otp.hpp"

namespace myproxy::repository {

/// How a record's credential bytes are protected at rest.
enum class Sealing {
  /// Pass-phrase envelope (PBKDF2 + AES-GCM); decryption success *is* the
  /// pass-phrase check (§5.1). The default.
  kPassphrase,
  /// Sealed under the repository master key; authentication happens via a
  /// pass-phrase digest, an OTP chain, or the renewer ACL. Used for
  /// OTP-armed (§6.3) and renewable (§6.6) credentials, whose retrieval
  /// secret rotates or is absent.
  kMasterKey,
  /// Plaintext (the encryption-at-rest ablation only; authentication via
  /// pass-phrase digest).
  kPlain,
};

[[nodiscard]] std::string_view to_string(Sealing sealing) noexcept;
[[nodiscard]] Sealing sealing_from_string(std::string_view text);

struct CredentialRecord {
  std::string username;  ///< repository account name (user-chosen, §4.1)
  std::string name;      ///< wallet slot; empty = the default credential

  std::string owner_dn;  ///< Grid DN that stored the credential

  /// Credential PEM bytes, protected per `sealing`.
  std::vector<std::uint8_t> blob;
  Sealing sealing = Sealing::kPassphrase;

  /// hex(SHA-256(aad:pass phrase)) for kMasterKey / kPlain records that
  /// still authenticate retrievals by pass phrase.
  std::optional<std::string> passphrase_digest;

  TimePoint created_at{};
  TimePoint not_after{};  ///< stored credential's own expiry

  /// §4.1 retrieval restriction: longest proxy the repository may delegate
  /// from this credential.
  Seconds max_delegation_lifetime{kDefaultDelegatedLifetime};

  /// Per-credential DN patterns narrowing the server-wide retriever /
  /// renewer ACLs; empty = inherit the server ACL unchanged.
  std::vector<std::string> retriever_patterns;
  std::vector<std::string> renewer_patterns;

  /// Every proxy delegated from this credential is a limited proxy.
  bool always_limited = false;

  /// Restriction policy ("rights=...") embedded into every delegation
  /// from this credential (§6.5).
  std::optional<std::string> restriction;

  /// Comma-separated task tags for wallet selection (§6.2).
  std::string task_tags;

  /// OTP state when auth_mode is OTP (§6.3).
  std::optional<OtpState> otp;

  /// Unique key of this record within a store.
  [[nodiscard]] std::string key() const { return username + "\x1e" + name; }

  [[nodiscard]] bool expired() const { return now() > not_after; }

  /// Text serialization used by FileCredentialStore.
  [[nodiscard]] std::string serialize() const;
  static CredentialRecord parse(std::string_view text);
};

class CredentialStore {
 public:
  virtual ~CredentialStore() = default;

  /// Insert or replace the record with the same (username, name).
  virtual void put(const CredentialRecord& record) = 0;

  [[nodiscard]] virtual std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const = 0;

  /// Remove one record; returns false if it did not exist.
  virtual bool remove(std::string_view username, std::string_view name) = 0;

  /// Remove all of a user's records; returns how many were removed.
  virtual std::size_t remove_all(std::string_view username) = 0;

  /// All records for `username` (the user's wallet, §6.2).
  [[nodiscard]] virtual std::vector<CredentialRecord> list(
      std::string_view username) const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Delete expired records; returns how many were swept.
  virtual std::size_t sweep_expired() = 0;
};

class MemoryCredentialStore final : public CredentialStore {
 public:
  void put(const CredentialRecord& record) override;
  [[nodiscard]] std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const override;
  bool remove(std::string_view username, std::string_view name) override;
  std::size_t remove_all(std::string_view username) override;
  [[nodiscard]] std::vector<CredentialRecord> list(
      std::string_view username) const override;
  [[nodiscard]] std::size_t size() const override;
  std::size_t sweep_expired() override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, CredentialRecord, std::less<>> records_;
};

/// One file per record: <dir>/<hex(username)>-<hex(name)>.cred, written via
/// a temp file + rename so a crash never leaves a torn record.
class FileCredentialStore final : public CredentialStore {
 public:
  explicit FileCredentialStore(std::filesystem::path directory);

  void put(const CredentialRecord& record) override;
  [[nodiscard]] std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const override;
  bool remove(std::string_view username, std::string_view name) override;
  std::size_t remove_all(std::string_view username) override;
  [[nodiscard]] std::vector<CredentialRecord> list(
      std::string_view username) const override;
  [[nodiscard]] std::size_t size() const override;
  std::size_t sweep_expired() override;

  [[nodiscard]] const std::filesystem::path& directory() const {
    return directory_;
  }

 private:
  [[nodiscard]] std::filesystem::path record_path(
      std::string_view username, std::string_view name) const;

  std::filesystem::path directory_;
  mutable std::mutex mutex_;
};

}  // namespace myproxy::repository
