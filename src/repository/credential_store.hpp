// Storage backends for the credential repository.
//
// A record is one delegated (or long-term, §6.1) credential held on the
// user's behalf, together with the metadata the paper attaches to it:
// owner identity, retrieval restrictions (max delegated lifetime,
// per-credential retriever/renewer ACLs), and the authentication state
// (the at-rest encryption envelope doubles as the pass-phrase check, §5.1;
// OTP chains for §6.3).
//
// Backends:
//  * MemoryCredentialStore — tests and benchmarks.
//  * FileCredentialStore — the production layout: one file per record,
//    fanned out over hashed shard directories with striped reader/writer
//    locks, an in-memory metadata index built by a parallel scan at
//    startup, and configurable commit durability (none / fsync / group
//    commit). A store written by the legacy flat layout is migrated into
//    the sharded layout transparently on first open.
//  * FlatFileCredentialStore — the legacy flat layout behind one global
//    mutex. Kept as the migration source, the myproxy-admin-query
//    compatibility path, and the baseline the store-scale benchmark
//    measures the sharded store against.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "repository/group_commit.hpp"
#include "repository/otp.hpp"

namespace myproxy::repository {

/// How a record's credential bytes are protected at rest.
enum class Sealing {
  /// Pass-phrase envelope (PBKDF2 + AES-GCM); decryption success *is* the
  /// pass-phrase check (§5.1). The default.
  kPassphrase,
  /// Sealed under the repository master key; authentication happens via a
  /// pass-phrase digest, an OTP chain, or the renewer ACL. Used for
  /// OTP-armed (§6.3) and renewable (§6.6) credentials, whose retrieval
  /// secret rotates or is absent.
  kMasterKey,
  /// Plaintext (the encryption-at-rest ablation only; authentication via
  /// pass-phrase digest).
  kPlain,
};

[[nodiscard]] std::string_view to_string(Sealing sealing) noexcept;
[[nodiscard]] Sealing sealing_from_string(std::string_view text);

/// How far a committed PUT is pushed toward the platter before the call
/// returns (store_sync_mode).
enum class SyncMode {
  kNone,   ///< rename only; a host crash may lose the last writes
  kFsync,  ///< fdatasync(temp) before and fsync(shard dir) after the rename
  kGroup,  ///< like kFsync, but flushes batched across concurrent writers
};

[[nodiscard]] std::string_view to_string(SyncMode mode) noexcept;
[[nodiscard]] SyncMode sync_mode_from_string(std::string_view text);

struct CredentialRecord {
  std::string username;  ///< repository account name (user-chosen, §4.1)
  std::string name;      ///< wallet slot; empty = the default credential

  std::string owner_dn;  ///< Grid DN that stored the credential

  /// Credential PEM bytes, protected per `sealing`.
  std::vector<std::uint8_t> blob;
  Sealing sealing = Sealing::kPassphrase;

  /// hex(SHA-256(aad:pass phrase)) for kMasterKey / kPlain records that
  /// still authenticate retrievals by pass phrase.
  std::optional<std::string> passphrase_digest;

  TimePoint created_at{};
  TimePoint not_after{};  ///< stored credential's own expiry

  /// §4.1 retrieval restriction: longest proxy the repository may delegate
  /// from this credential.
  Seconds max_delegation_lifetime{kDefaultDelegatedLifetime};

  /// Per-credential DN patterns narrowing the server-wide retriever /
  /// renewer ACLs; empty = inherit the server ACL unchanged.
  std::vector<std::string> retriever_patterns;
  std::vector<std::string> renewer_patterns;

  /// Every proxy delegated from this credential is a limited proxy.
  bool always_limited = false;

  /// Restriction policy ("rights=...") embedded into every delegation
  /// from this credential (§6.5).
  std::optional<std::string> restriction;

  /// Comma-separated task tags for wallet selection (§6.2).
  std::string task_tags;

  /// OTP state when auth_mode is OTP (§6.3).
  std::optional<OtpState> otp;

  /// Unique key of a (username, name) pair within a store. Usernames are
  /// user-chosen bytes, so the separator is a control character no shell
  /// or form field produces.
  [[nodiscard]] static std::string make_key(std::string_view username,
                                            std::string_view name);

  /// Unique key of this record within a store.
  [[nodiscard]] std::string key() const { return make_key(username, name); }

  [[nodiscard]] bool expired() const { return now() > not_after; }

  /// Text serialization used by the file stores.
  [[nodiscard]] std::string serialize() const;
  static CredentialRecord parse(std::string_view text);
};

class CredentialStore {
 public:
  virtual ~CredentialStore() = default;

  /// Insert or replace the record with the same (username, name).
  virtual void put(const CredentialRecord& record) = 0;

  [[nodiscard]] virtual std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const = 0;

  /// Remove one record; returns false if it did not exist.
  virtual bool remove(std::string_view username, std::string_view name) = 0;

  /// Remove all of a user's records; returns how many were removed.
  virtual std::size_t remove_all(std::string_view username) = 0;

  /// All records for `username` (the user's wallet, §6.2).
  [[nodiscard]] virtual std::vector<CredentialRecord> list(
      std::string_view username) const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Delete expired records; returns how many were swept.
  virtual std::size_t sweep_expired() = 0;

  /// Every username with at least one record, sorted. Used by admin tooling
  /// and by replication (a bootstrapping replica wipes its store before
  /// installing a snapshot).
  [[nodiscard]] virtual std::vector<std::string> usernames() const = 0;
};

class MemoryCredentialStore final : public CredentialStore {
 public:
  void put(const CredentialRecord& record) override;
  [[nodiscard]] std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const override;
  bool remove(std::string_view username, std::string_view name) override;
  std::size_t remove_all(std::string_view username) override;
  [[nodiscard]] std::vector<CredentialRecord> list(
      std::string_view username) const override;
  [[nodiscard]] std::size_t size() const override;
  std::size_t sweep_expired() override;
  [[nodiscard]] std::vector<std::string> usernames() const override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, CredentialRecord, std::less<>> records_;
};

/// The legacy flat layout: <dir>/<hex(username)>-<hex(name)>.cred under one
/// global mutex, written via a temp file + rename so a crash never leaves a
/// torn record. list/size/remove_all/sweep_expired re-read the whole
/// directory — O(total records) per call — which is exactly the wall the
/// sharded store exists to remove. Kept for migration fabrication in tests,
/// as the store-scale benchmark baseline, and for operators still pointing
/// tools at an unmigrated directory.
class FlatFileCredentialStore final : public CredentialStore {
 public:
  explicit FlatFileCredentialStore(std::filesystem::path directory);

  void put(const CredentialRecord& record) override;
  [[nodiscard]] std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const override;
  bool remove(std::string_view username, std::string_view name) override;
  std::size_t remove_all(std::string_view username) override;
  [[nodiscard]] std::vector<CredentialRecord> list(
      std::string_view username) const override;
  [[nodiscard]] std::size_t size() const override;
  std::size_t sweep_expired() override;
  [[nodiscard]] std::vector<std::string> usernames() const override;

  [[nodiscard]] const std::filesystem::path& directory() const {
    return directory_;
  }

 private:
  [[nodiscard]] std::filesystem::path record_path(
      std::string_view username, std::string_view name) const;

  std::filesystem::path directory_;
  mutable std::mutex mutex_;
};

struct FileStoreOptions {
  /// Shard directory fanout. Fixed at store creation: the directory
  /// remembers its fanout in a layout marker, and later opens follow the
  /// marker rather than this knob.
  std::size_t shard_count = 16;

  SyncMode sync_mode = SyncMode::kNone;

  /// Threads for the startup index scan; 0 = one per core (capped at 8).
  std::size_t scan_threads = 0;
};

/// The production store: one file per record at
/// <dir>/<shard>/<hex(username)>-<hex(name)>.cred with
/// shard = fnv1a64(username) % fanout.
///
/// Concurrency: one std::shared_mutex per shard. All of a user's records
/// live in one shard (the hash covers the username only), so every
/// operation touches exactly one stripe; PUTs and GETs for different users
/// proceed in parallel, and GETs for the same user share the lock.
///
/// Index: the constructor scans the directory once (parallel ThreadPool
/// scan) into an in-memory metadata index — per shard, username → slot →
/// {file, expiry, sealing} plus an expiry-ordered multimap. After startup
/// the index is authoritative: get/list touch only the named user's files,
/// size() is a counter read, and sweep_expired() walks only the expired
/// prefix of the expiry map instead of parsing every record. Mutations
/// update index and disk under the same shard lock, so the index never
/// drifts.
///
/// Migration: legacy flat-layout records found at the top level (or records
/// sharded under a different fanout) are re-homed into their shard
/// directory during the scan. Orphaned *.tmp files — a writer died between
/// temp write and rename-commit — are reaped; they were never committed.
class FileCredentialStore final : public CredentialStore {
 public:
  explicit FileCredentialStore(std::filesystem::path directory,
                               FileStoreOptions options = {});
  ~FileCredentialStore() override;

  FileCredentialStore(const FileCredentialStore&) = delete;
  FileCredentialStore& operator=(const FileCredentialStore&) = delete;

  void put(const CredentialRecord& record) override;
  [[nodiscard]] std::optional<CredentialRecord> get(
      std::string_view username, std::string_view name) const override;
  bool remove(std::string_view username, std::string_view name) override;
  std::size_t remove_all(std::string_view username) override;
  [[nodiscard]] std::vector<CredentialRecord> list(
      std::string_view username) const override;
  [[nodiscard]] std::size_t size() const override;
  std::size_t sweep_expired() override;

  [[nodiscard]] const std::filesystem::path& directory() const {
    return directory_;
  }

  /// Fanout actually in effect (from the layout marker).
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  [[nodiscard]] SyncMode sync_mode() const { return sync_mode_; }

  /// Every username with at least one record, sorted (admin tooling).
  [[nodiscard]] std::vector<std::string> usernames() const override;

  /// What the startup scan found (tests, operator logging).
  struct ScanReport {
    std::size_t indexed = 0;     ///< records in the index
    std::size_t migrated = 0;    ///< records re-homed into their shard
    std::size_t reaped_tmp = 0;  ///< orphaned .tmp files deleted
    std::size_t skipped = 0;     ///< unreadable/duplicate files left in place
  };
  [[nodiscard]] const ScanReport& scan_report() const { return scan_report_; }

  /// Group-commit batcher counters (meaningful when sync_mode == kGroup).
  [[nodiscard]] const GroupCommitter& committer() const { return committer_; }

 private:
  struct IndexEntry {
    std::string file_name;      ///< within the shard directory
    std::int64_t not_after = 0;  ///< unix seconds (sweep ordering)
    Sealing sealing = Sealing::kPassphrase;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::filesystem::path dir;
    int dir_fd = -1;
    /// username → slot name → entry.
    std::unordered_map<std::string, std::map<std::string, IndexEntry>> users;
    /// not_after → (username, slot): sweep touches only the expired prefix.
    std::multimap<std::int64_t, std::pair<std::string, std::string>>
        by_expiry;
  };

  [[nodiscard]] Shard& shard_for(std::string_view username) const;

  /// Read the fanout pinned by the layout marker, writing it (from
  /// `configured`) on first open of a directory.
  [[nodiscard]] std::size_t pinned_fanout(std::size_t configured);

  /// Build the index: parallel scan of shard directories, then migration
  /// of any top-level legacy records.
  void scan(std::size_t scan_threads);

  /// Parse one record file and fold it into the index, migrating it into
  /// its shard directory when it lives elsewhere. Thread-safe.
  void index_file(const std::filesystem::path& path);

  /// Insert/replace an index entry. Caller holds the shard's unique lock.
  void index_insert(Shard& shard, const std::string& username,
                    const std::string& name, IndexEntry entry);

  /// Drop the by_expiry entry matching (not_after, username, name). Caller
  /// holds the shard's unique lock.
  static void erase_expiry(Shard& shard, std::int64_t not_after,
                           std::string_view username, std::string_view name);

  /// fdatasync a freshly written temp file (honoring sync_mode_).
  void sync_file(const std::filesystem::path& path);

  /// fsync a shard directory after rename/unlink (honoring sync_mode_).
  void sync_dir(const Shard& shard);

  std::filesystem::path directory_;
  SyncMode sync_mode_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};
  mutable GroupCommitter committer_;
  ScanReport scan_report_;
  /// Guards scan_report_ during the parallel scan (read-only afterwards).
  std::mutex scan_mutex_;
};

}  // namespace myproxy::repository
