#include "repository/cached_store.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/error.hpp"

namespace myproxy::repository {

CachedCredentialStore::CachedCredentialStore(
    std::unique_ptr<CredentialStore> backing, std::size_t shards,
    std::size_t max_entries_per_shard)
    : backing_(std::move(backing)),
      max_entries_per_shard_(std::max<std::size_t>(1, max_entries_per_shard)),
      shards_(std::max<std::size_t>(1, shards)) {
  if (backing_ == nullptr) {
    throw Error(ErrorCode::kInternal,
                "CachedCredentialStore requires a backing store");
  }
}

CachedCredentialStore::Shard& CachedCredentialStore::shard_for(
    std::string_view key) const {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

std::vector<std::unique_lock<std::mutex>> CachedCredentialStore::lock_all()
    const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  // Always index order: cross-shard deadlock is impossible.
  for (Shard& shard : shards_) locks.emplace_back(shard.mutex);
  return locks;
}

void CachedCredentialStore::put(const CredentialRecord& record) {
  const std::string key = record.key();
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mutex);
  backing_->put(record);
  // Write-through: replace (don't just drop) so the pass-phrase change /
  // OTP-advance path stays warm for the next retrieval.
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    it->second = record;
    return;
  }
  if (shard.entries.size() >= max_entries_per_shard_) {
    invalidations_.fetch_add(shard.entries.size(),
                             std::memory_order_relaxed);
    shard.entries.clear();
  }
  shard.entries.emplace(key, record);
}

std::optional<CredentialRecord> CachedCredentialStore::get(
    std::string_view username, std::string_view name) const {
  const std::string key = CredentialRecord::make_key(username, name);
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Fill under the shard lock: a concurrent mutation of this key orders
  // strictly before or after this read-and-insert, never between.
  std::optional<CredentialRecord> record = backing_->get(username, name);
  if (record.has_value()) {
    if (shard.entries.size() >= max_entries_per_shard_) {
      invalidations_.fetch_add(shard.entries.size(),
                               std::memory_order_relaxed);
      shard.entries.clear();
    }
    shard.entries.emplace(key, *record);
  }
  return record;
}

bool CachedCredentialStore::remove(std::string_view username,
                                   std::string_view name) {
  const std::string key = CredentialRecord::make_key(username, name);
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mutex);
  const bool removed = backing_->remove(username, name);
  if (shard.entries.erase(key) > 0) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  return removed;
}

std::size_t CachedCredentialStore::remove_all(std::string_view username) {
  const auto locks = lock_all();
  const std::size_t removed = backing_->remove_all(username);
  for (Shard& shard : shards_) {
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      const std::string_view key = it->first;
      const std::size_t sep = key.find('\x1e');
      if (key.substr(0, sep) == username) {
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        it = shard.entries.erase(it);
      } else {
        ++it;
      }
    }
  }
  return removed;
}

std::vector<CredentialRecord> CachedCredentialStore::list(
    std::string_view username) const {
  // Listings are metadata-path, not the retrieval hot path: delegate.
  return backing_->list(username);
}

std::size_t CachedCredentialStore::size() const { return backing_->size(); }

std::size_t CachedCredentialStore::sweep_expired() {
  const auto locks = lock_all();
  const std::size_t swept = backing_->sweep_expired();
  if (swept > 0) {
    // The backing store reports a count, not keys — drop everything rather
    // than serve a record whose file the sweep just deleted.
    for (Shard& shard : shards_) {
      invalidations_.fetch_add(shard.entries.size(),
                               std::memory_order_relaxed);
      shard.entries.clear();
    }
  }
  return swept;
}

CachedCredentialStore::Stats CachedCredentialStore::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  return out;
}

std::size_t CachedCredentialStore::cached_entries() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace myproxy::repository
