// myproxy-destroy: remove credentials from the repository (§4.1).
//
// Usage:
//   myproxy-destroy --cred usercred.pem --trust ca.pem --port 7512[,7513,...]
//       --user alice [--name slot]
#include "client/myproxy_client.hpp"
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void destroy(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");

  const gsi::Credential proxy = gsi::create_proxy(source);
  client::MyProxyClient client(proxy, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  client.destroy(username, args.get_or("--name", ""));
  std::cout << "MyProxy credential for user " << username
            << " was successfully removed.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--name"}));
  return myproxy::tools::run_tool("myproxy-destroy",
                                  [&args] { destroy(args); });
}
