// myproxy-retrieve: fetch stored key material back from the repository
// (paper §6.1; owner-only).
//
// Usage:
//   myproxy-retrieve --cred usercred.pem --trust ca.pem --port 7512[,7513,...]
//       --user alice --out restored.pem [--name slot] [--passphrase-file f]
#include "client/myproxy_client.hpp"
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void retrieve(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");
  const std::string passphrase =
      tools::read_passphrase(args, "Enter MyProxy pass phrase");

  const gsi::Credential proxy = gsi::create_proxy(source);
  client::MyProxyClient client(proxy, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  const gsi::Credential restored =
      client.retrieve(username, passphrase, args.get_or("--name", ""));
  const std::string out = args.get_or("--out", "restored-credential.pem");
  const SecureBuffer pem = restored.to_pem();
  tools::write_file(out, pem.view(), /*private_mode=*/true);
  std::cout << "Credential for " << restored.identity().str()
            << " written to " << out << ".\n";
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--name", "--out",
           "--passphrase-file"}));
  return myproxy::tools::run_tool("myproxy-retrieve",
                                  [&args] { retrieve(args); });
}
