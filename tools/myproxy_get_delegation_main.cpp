// myproxy-get-delegation: retrieve a delegated proxy (Figure 2).
//
// Usage:
//   myproxy-get-delegation --cred portalcred.pem --trust ca.pem
//       --port 7512[,7513,...] --user alice --out /tmp/x509up
//       [--lifetime 7200]
//       [--name slot] [--limited] [--otp] [--passphrase-file f]
//       [--retries N] [--retry-backoff-ms MS] [--connect-timeout-ms MS]
//       [--io-timeout-ms MS]
#include "client/myproxy_client.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void get_delegation(const tools::Args& args) {
  const auto credential =
      tools::load_credential(args.get_or("--cred", "portalcred.pem"));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");
  const std::string passphrase =
      tools::read_passphrase(args, "Enter MyProxy pass phrase");

  client::MyProxyClient client(credential, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  client::GetOptions options;
  options.lifetime = Seconds(std::stoll(args.get_or("--lifetime", "0")));
  options.credential_name = args.get_or("--name", "");
  options.want_limited = args.has("--limited");
  options.otp = args.has("--otp");

  const gsi::Credential delegated =
      client.get(username, passphrase, options);
  const std::string out = args.get_or("--out", "/tmp/x509up_u_myproxy");
  const SecureBuffer pem = delegated.to_pem();
  tools::write_file(out, pem.view(), /*private_mode=*/true);
  std::cout << "A proxy has been received for user " << username << " in "
            << out << " (valid for "
            << format_duration(delegated.remaining_lifetime()) << ").\n";
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--lifetime", "--name",
           "--out", "--passphrase-file"}));
  return myproxy::tools::run_tool("myproxy-get-delegation",
                                  [&args] { get_delegation(args); });
}
