// myproxy-info: show metadata for stored credentials.
//
// Usage:
//   myproxy-info --cred usercred.pem --trust ca.pem --port 7512[,7513,...]
//       --user alice [--name slot]
#include "client/myproxy_client.hpp"
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void info(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");

  const gsi::Credential proxy = gsi::create_proxy(source);
  client::MyProxyClient client(proxy, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  const auto result = client.info(username, args.get_or("--name", ""));
  std::cout << "username:       " << username << '\n'
            << "owner:          " << result.owner_dn << '\n'
            << "created:        " << format_utc(result.created_at) << '\n'
            << "expires:        " << format_utc(result.not_after) << '\n'
            << "max delegation: "
            << format_duration(result.max_delegation_lifetime) << '\n'
            << "sealing:        " << result.sealing << '\n';
  if (result.limited) std::cout << "limited:        yes\n";
  if (result.restriction.has_value()) {
    std::cout << "restriction:    " << *result.restriction << '\n';
  }
  if (result.otp_remaining.has_value()) {
    std::cout << "otp remaining:  " << *result.otp_remaining << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--name"}));
  return myproxy::tools::run_tool("myproxy-info", [&args] { info(args); });
}
