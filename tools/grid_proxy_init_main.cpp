// grid-proxy-init: create a local proxy credential from a long-term
// credential (paper §2.5's "typical GSI usage" step one).
//
// Usage:
//   grid-proxy-init --cred usercred.pem --out /tmp/x509up
//       [--lifetime 43200] [--limited] [--restriction "rights=a,b"]
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void proxy_init(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"),
                             args.get_or("--key-passphrase", ""));
  gsi::ProxyOptions options;
  options.lifetime =
      Seconds(std::stoll(args.get_or("--lifetime", "43200")));
  options.limited = args.has("--limited");
  if (const auto restriction = args.get("--restriction")) {
    options.restriction = pki::RestrictionPolicy::parse(*restriction);
  }
  const gsi::Credential proxy = gsi::create_proxy(source, options);
  const std::string out = args.get_or("--out", "/tmp/x509up_u_myproxy");
  const SecureBuffer pem = proxy.to_pem();
  tools::write_file(out, pem.view(), /*private_mode=*/true);
  std::cout << "Your proxy is valid until "
            << format_utc(proxy.not_after()) << " (" << out << ")\n"
            << "identity: " << proxy.identity().str() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      {"--cred", "--out", "--lifetime", "--restriction", "--key-passphrase"});
  return myproxy::tools::run_tool("grid-proxy-init",
                                  [&args] { proxy_init(args); });
}
