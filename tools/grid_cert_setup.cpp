// grid-cert-setup: bootstrap a toy Grid PKI on disk — a CA plus user and
// service credentials — so the myproxy-* tools can run standalone. Stands
// in for the production CA enrollment the paper assumes (§2.1).
//
// Usage:
//   grid-cert-setup --dir ./grid-pki
//       --user "Alice" --service "myproxy.grid.test" --portal "portal-1"
#include "client/myproxy_client.hpp"
#include "pki/certificate_authority.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void setup(const tools::Args& args) {
  const std::filesystem::path dir = args.get_or("--dir", "./grid-pki");
  std::filesystem::create_directories(dir);

  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/C=US/O=Grid/CN=Reproduction CA"),
      crypto::KeySpec::rsa(2048));
  tools::write_file(dir / "ca.pem", ca.certificate().to_pem());
  std::cout << "wrote " << (dir / "ca.pem").string() << " ("
            << ca.certificate().subject().str() << ")\n";

  const auto issue = [&](const std::string& ou, const std::string& cn,
                         const std::string& filename) {
    const auto dn = pki::DistinguishedName::parse(
        "/C=US/O=Grid/OU=" + ou + "/CN=" + cn);
    auto key = crypto::KeyPair::generate(crypto::KeySpec::rsa(2048));
    auto cert = ca.issue(dn, key, Seconds(365L * 24 * 3600));
    const gsi::Credential credential(std::move(cert), std::move(key));
    const SecureBuffer pem = credential.to_pem();
    tools::write_file(dir / filename, pem.view(), /*private_mode=*/true);
    std::cout << "wrote " << (dir / filename).string() << " (" << dn.str()
              << ")\n";
  };

  issue("People", args.get_or("--user", "Alice"), "usercred.pem");
  issue("Services", args.get_or("--service", "myproxy.grid.test"),
        "hostcred.pem");
  issue("Portals", args.get_or("--portal", "portal-1"), "portalcred.pem");
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv, {"--dir", "--user", "--service", "--portal"});
  return myproxy::tools::run_tool("grid-cert-setup",
                                  [&args] { setup(args); });
}
