// myproxy-server: run the online credential repository (paper §4).
//
// Usage:
//   myproxy-server --port 7512 --cred hostcred.pem --trust ca.pem
//       [--config myproxy-server.config] [--storage /var/myproxy]
//
// Config keys (myproxy-server.config style):
//   accepted_credentials  "<dn glob>"      # who may store (repeatable)
//   authorized_retrievers "<dn glob>"      # who may retrieve (repeatable)
//   authorized_renewers   "<dn glob>"      # who may renew (repeatable)
//   max_proxy_lifetime    <seconds>
//   default_proxy_lifetime <seconds>
//   max_cred_lifetime     <seconds>
//   kdf_iterations        <n>
//   passphrase_min_length <n>
//   handshake_timeout_ms  <ms>     # TLS handshake deadline (0 = off)
//   request_timeout_ms    <ms>     # per-request idle deadline (0 = off)
//   max_connections       <n>      # in-flight connection cap (0 = off)
//   worker_threads        <n>
//   io_model              threaded|reactor  # connection front end (default reactor)
//   reactor_threads       <n>      # epoll event loops for io_model=reactor
//
// Hot-path tuning (keypair pool / TLS resumption / store cache):
//   delegation_key_type   rsa|ec   # server-side delegation keys (PUT)
//   delegation_key_bits   <n>      # RSA modulus bits (ignored for ec)
//   keygen_pool_size      <n>      # pre-generated keys kept ready (0 = off)
//   keygen_pool_refill_threads <n> # background keygen workers
//   tls_session_resumption 0|1     # abbreviated handshakes for repeat clients
//   tls_session_timeout_s <s>      # session ticket lifetime
//   store_cache_shards    <n>      # read-cache lock shards (0 = no cache)
//
// Store scaling / durability (sharded file store):
//   store_shards          <n>      # shard directory fanout (pinned at creation)
//   store_sync_mode       none|fsync|group  # PUT commit durability
//   store_scan_threads    <n>      # startup index-scan threads (0 = auto)
//   sweep_interval_s      <s>      # background expiry sweep period (0 = off)
//
// Replication & audit:
//   replication_role      standalone|primary|replica
//   replication_primary   <port>   # replica: port of the primary
//   replica_acl           "<dn glob>"  # primary: replica DNs (repeatable)
//   replication_batch     <n>      # primary: max entries per shipped batch
//   replication_journal   <path>   # primary journal (default <storage>/journal.log)
//   replication_sync_mode none|fsync|group  # journal append durability
//   replication_state_file <path>  # replica offset (default <storage>/replica.state)
//   audit_log_file        <path>   # append-only JSONL audit sink
//
// Sharded cluster (docs/PROTOCOL.md "Cluster sub-protocol"; values with
// spaces must be quoted):
//   cluster_shard         "<shard> <primary>[,<replica>...]"  # repeatable;
//                                  # ids must be dense 0..N-1 and identical
//                                  # on every node of the cluster
//   cluster_epoch         <n>      # map version (default 1)
//   cluster_self          <port>   # this node's primary port (required
//                                  # whenever cluster_shard keys are set;
//                                  # a replica names its primary's port)
//   cluster_admin_acl     "<dn glob>"  # who may MIGRATE and push
//                                  # MIGRATE_INSTALL streams (repeatable)
//
// Admission control & metrics (hot-reload the admission keys via SIGHUP):
//   rate_limit_rps        <r>      # per-identity token refill rate (0 = off)
//   rate_limit_burst      <n>      # per-identity burst (0 = derive from rate)
//   max_queued_per_identity <n>    # fair-queue hard cap per identity
//   preauth_rate_limit_rps <r>     # per-peer-address pre-handshake rate
//   preauth_rate_limit_burst <n>
//   metrics_enabled       0|1      # plaintext-HTTP /metrics endpoint
//   metrics_port          <port>   # 0 = ephemeral
//   metrics_bind_address  <addr>   # loopback unless metrics_bind_any=1
//   metrics_bind_any      0|1      # allow a non-loopback metrics bind
#include <csignal>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "replication/replicated_store.hpp"
#include "replication/wire.hpp"
#include "repository/cached_store.hpp"
#include "server/myproxy_server.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

void serve(const tools::Args& args) {
  const auto credential =
      tools::load_credential(args.get_or("--cred", "hostcred.pem"));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));

  Config config;
  std::filesystem::path config_path;
  if (const auto path = args.get("--config")) {
    config = Config::load(*path);
    config_path = *path;
  }

  repository::RepositoryPolicy policy;
  policy.max_stored_lifetime =
      Seconds(config.get_int_or("max_cred_lifetime",
                                kDefaultRepositoryLifetime.count()));
  policy.max_delegation_lifetime =
      Seconds(config.get_int_or("max_proxy_lifetime", 24 * 3600));
  policy.default_delegation_lifetime = Seconds(config.get_int_or(
      "default_proxy_lifetime", kDefaultDelegatedLifetime.count()));
  policy.kdf_iterations = static_cast<unsigned>(
      config.get_int_or("kdf_iterations", crypto::kDefaultKdfIterations));
  policy.passphrase_policy.set_min_length(static_cast<std::size_t>(
      config.get_int_or("passphrase_min_length", 6)));

  const std::string storage_dir =
      args.get_or("--storage", config.get_or("storage_dir", ""));

  std::unique_ptr<repository::CredentialStore> store;
  if (args.has("--storage") || config.has("storage_dir")) {
    repository::FileStoreOptions store_options;
    store_options.shard_count = static_cast<std::size_t>(
        config.get_int_or("store_shards",
                          static_cast<std::int64_t>(
                              store_options.shard_count)));
    // Default to durable commits in the production tool; benches and tests
    // opt out explicitly.
    store_options.sync_mode = repository::sync_mode_from_string(
        config.get_or("store_sync_mode", "fsync"));
    store_options.scan_threads = static_cast<std::size_t>(
        config.get_int_or("store_scan_threads", 0));
    store = std::make_unique<repository::FileCredentialStore>(storage_dir,
                                                              store_options);
  } else {
    store = std::make_unique<repository::MemoryCredentialStore>();
  }

  const auto role = replication::replication_role_from_string(
      config.get_or("replication_role", "standalone"));
  std::shared_ptr<replication::ReplicationJournal> journal;
  if (role == replication::ReplicationRole::kPrimary) {
    // The journal wraps the innermost store so every mutation is sequenced
    // before the read cache sees it.
    const std::string journal_path = config.get_or(
        "replication_journal",
        storage_dir.empty() ? "" : storage_dir + "/journal.log");
    if (journal_path.empty()) {
      throw Error(ErrorCode::kConfig,
                  "replication_role=primary needs replication_journal "
                  "(or a storage directory to default into)");
    }
    journal = std::make_shared<replication::ReplicationJournal>(
        journal_path, repository::sync_mode_from_string(
                          config.get_or("replication_sync_mode", "fsync")));
    store = std::make_unique<replication::ReplicatedStore>(
        std::move(store), journal, journal_path + ".watermark");
  }

  const auto cache_shards =
      static_cast<std::size_t>(config.get_int_or("store_cache_shards", 8));
  if (cache_shards > 0) {
    store = std::make_unique<repository::CachedCredentialStore>(
        std::move(store), cache_shards);
  }
  auto repository = std::make_shared<repository::Repository>(
      std::move(store), std::move(policy));

  server::ServerConfig server_config;
  server_config.port = static_cast<std::uint16_t>(
      std::stoi(args.get_or("--port", "7512")));
  server_config.worker_threads = static_cast<std::size_t>(config.get_int_or(
      "worker_threads",
      static_cast<std::int64_t>(server_config.worker_threads)));
  server_config.handshake_timeout = Millis(config.get_int_or(
      "handshake_timeout_ms", server_config.handshake_timeout.count()));
  server_config.request_timeout = Millis(config.get_int_or(
      "request_timeout_ms", server_config.request_timeout.count()));
  server_config.max_connections = static_cast<std::size_t>(config.get_int_or(
      "max_connections",
      static_cast<std::int64_t>(server_config.max_connections)));
  server_config.io_model = server::io_model_from_string(
      config.get_or("io_model", std::string(to_string(server_config.io_model))));
  server_config.reactor_threads = static_cast<std::size_t>(config.get_int_or(
      "reactor_threads",
      static_cast<std::int64_t>(server_config.reactor_threads)));
  const std::string key_type = config.get_or("delegation_key_type", "ec");
  if (key_type == "rsa") {
    server_config.delegation_key_spec = crypto::KeySpec::rsa(
        static_cast<unsigned>(config.get_int_or("delegation_key_bits", 2048)));
  } else if (key_type == "ec") {
    server_config.delegation_key_spec = crypto::KeySpec::ec();
  } else {
    throw Error(ErrorCode::kConfig,
                "delegation_key_type must be 'rsa' or 'ec'");
  }
  server_config.keygen_pool_size = static_cast<std::size_t>(config.get_int_or(
      "keygen_pool_size",
      static_cast<std::int64_t>(server_config.keygen_pool_size)));
  server_config.keygen_pool_refill_threads =
      static_cast<std::size_t>(config.get_int_or(
          "keygen_pool_refill_threads",
          static_cast<std::int64_t>(server_config.keygen_pool_refill_threads)));
  server_config.tls_session_resumption =
      config.get_int_or("tls_session_resumption",
                        server_config.tls_session_resumption ? 1 : 0) != 0;
  server_config.tls_session_timeout = Seconds(config.get_int_or(
      "tls_session_timeout_s", server_config.tls_session_timeout.count()));
  server_config.sweep_interval = Seconds(config.get_int_or(
      "sweep_interval_s", server_config.sweep_interval.count()));
  for (const auto& pattern : config.get_all("accepted_credentials")) {
    server_config.accepted_credentials.add(pattern);
  }
  for (const auto& pattern : config.get_all("authorized_retrievers")) {
    server_config.authorized_retrievers.add(pattern);
  }
  for (const auto& pattern : config.get_all("authorized_renewers")) {
    server_config.authorized_renewers.add(pattern);
  }
  if (server_config.accepted_credentials.empty()) {
    server_config.accepted_credentials.add("*");
    log::warn("myproxy-server",
              "no accepted_credentials configured; accepting all "
              "authenticated storers");
  }
  if (server_config.authorized_retrievers.empty()) {
    server_config.authorized_retrievers.add("*");
    log::warn("myproxy-server",
              "no authorized_retrievers configured; accepting all "
              "authenticated retrievers");
  }

  server_config.replication_role = role;
  server_config.journal = journal;
  server_config.replication_batch = static_cast<std::size_t>(config.get_int_or(
      "replication_batch",
      static_cast<std::int64_t>(server_config.replication_batch)));
  for (const auto& pattern : config.get_all("replica_acl")) {
    server_config.replica_acl.add(pattern);
  }
  server_config.replication_primary_port = static_cast<std::uint16_t>(
      config.get_int_or("replication_primary", 0));
  server_config.replication_state_file = config.get_or(
      "replication_state_file",
      storage_dir.empty() ? "" : storage_dir + "/replica.state");
  server_config.audit_log_file = config.get_or("audit_log_file", "");

  server_config.cluster_map = cluster::cluster_map_from_config(config);
  if (!server_config.cluster_map.empty()) {
    server_config.cluster_self =
        static_cast<std::uint16_t>(config.get_int_or("cluster_self", 0));
    if (server_config.cluster_self == 0) {
      throw Error(ErrorCode::kConfig,
                  "cluster_shard keys need cluster_self (this node's "
                  "primary port) so the server knows which shards it owns");
    }
  }
  for (const auto& pattern : config.get_all("cluster_admin_acl")) {
    server_config.cluster_admin_acl.add(pattern);
  }

  server_config.admission = server::admission_limits_from_config(config);
  // Remember where the config came from so SIGHUP can re-read the
  // admission keys without a restart.
  server_config.config_file = config_path;
  server_config.metrics_enabled =
      config.get_int_or("metrics_enabled", 0) != 0;
  server_config.metrics_port = static_cast<std::uint16_t>(
      config.get_int_or("metrics_port",
                        static_cast<std::int64_t>(server_config.metrics_port)));
  server_config.metrics_bind_address =
      config.get_or("metrics_bind_address", server_config.metrics_bind_address);
  server_config.metrics_bind_any =
      config.get_int_or("metrics_bind_any", 0) != 0;
  if (role == replication::ReplicationRole::kPrimary &&
      server_config.replica_acl.empty()) {
    log::warn("myproxy-server",
              "replication_role=primary but replica_acl is empty; no "
              "replica will be able to connect");
  }

  server::MyProxyServer server(credential, std::move(trust), repository,
                               server_config);
  server.start();
  std::cout << "myproxy-server listening on port " << server.port() << '\n';
  if (server.metrics_port() != 0) {
    std::cout << "metrics on http://" << server_config.metrics_bind_address
              << ':' << server.metrics_port() << "/metrics\n";
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Expiry cleanup runs on the server's background sweep thread
  // (sweep_interval_s); this loop only waits for a shutdown signal.
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  server.stop();
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv, {"--port", "--cred", "--trust", "--config", "--storage"});
  return myproxy::tools::run_tool("myproxy-server", [&args] { serve(args); });
}
