// myproxy-list: list a user's credential wallet, optionally asking the
// repository to pick the credential for a task (paper §6.2).
//
// Usage:
//   myproxy-list --cred usercred.pem --trust ca.pem --port 7512[,7513,...]
//       --user alice [--task transfer]
#include "client/myproxy_client.hpp"
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void list(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");

  const gsi::Credential proxy = gsi::create_proxy(source);
  client::MyProxyClient client(proxy, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  if (const auto task = args.get("--task")) {
    const std::string selected = client.select_for_task(username, *task);
    std::cout << "credential for task '" << *task << "': "
              << (selected.empty() ? "(default)" : selected) << '\n';
    return;
  }
  for (const auto& name : client.list(username)) {
    std::cout << name << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--task"}));
  return myproxy::tools::run_tool("myproxy-list", [&args] { list(args); });
}
