// myproxy-change-passphrase: rotate the retrieval pass phrase, re-encrypting
// the stored credential under the new one.
//
// Usage:
//   myproxy-change-passphrase --cred usercred.pem --trust ca.pem
//       --port 7512[,7513,...] --user alice [--name slot]
//       --passphrase-file old.txt --new-passphrase-file new.txt
#include "client/myproxy_client.hpp"
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void change(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");
  const std::string old_phrase =
      tools::read_passphrase(args, "Enter current MyProxy pass phrase");
  std::string new_phrase;
  if (const auto file = args.get("--new-passphrase-file")) {
    new_phrase = tools::read_file(*file);
    while (!new_phrase.empty() &&
           (new_phrase.back() == '\n' || new_phrase.back() == '\r')) {
      new_phrase.pop_back();
    }
  } else {
    std::cerr << "Enter new MyProxy pass phrase: " << std::flush;
    std::getline(std::cin, new_phrase);
  }

  const gsi::Credential proxy = gsi::create_proxy(source);
  client::MyProxyClient client(proxy, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  client.change_passphrase(username, old_phrase, new_phrase,
                           args.get_or("--name", ""));
  std::cout << "Pass phrase changed for user " << username << ".\n";
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--name",
           "--passphrase-file", "--new-passphrase-file"}));
  return myproxy::tools::run_tool("myproxy-change-passphrase",
                                  [&args] { change(args); });
}
