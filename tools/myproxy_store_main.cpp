// myproxy-store: store a *long-term* credential (certificate and key) in
// the repository for later retrieval from anywhere (paper §6.1).
//
// Usage:
//   myproxy-store --cred usercred.pem --trust ca.pem --port 7512[,7513,...]
//       --user alice [--name slot] [--tags t1,t2] [--passphrase-file f]
#include "client/myproxy_client.hpp"
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void store(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"),
                             args.get_or("--key-passphrase", ""));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");
  const std::string passphrase =
      tools::read_passphrase(args, "Enter MyProxy pass phrase");

  // Authenticate with a fresh proxy; ship the long-term credential itself.
  const gsi::Credential proxy = gsi::create_proxy(source);
  client::MyProxyClient client(proxy, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  client::PutOptions options;
  options.credential_name = args.get_or("--name", "");
  options.task_tags = args.get_or("--tags", "");
  client.store(username, passphrase, source, options);
  std::cout << "Long-term credential for " << source.identity().str()
            << " stored under user " << username << ".\n";
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--name", "--tags",
           "--passphrase-file", "--key-passphrase"}));
  return myproxy::tools::run_tool("myproxy-store", [&args] { store(args); });
}
