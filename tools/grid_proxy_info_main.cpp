// grid-proxy-info: inspect a credential file — identity, proxy type and
// depth, validity, restrictions (companion to grid-proxy-init, matching the
// Globus tool of the same name).
//
// Usage:
//   grid-proxy-info --cred /tmp/x509up [--trust ca.pem]
#include "gsi/credential.hpp"
#include "pki/trust_store.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void info(const tools::Args& args) {
  const auto credential =
      tools::load_credential(args.get_or("--cred", "/tmp/x509up_u_myproxy"),
                             args.get_or("--key-passphrase", ""));
  const auto& cert = credential.certificate();
  std::cout << "subject   : " << credential.subject().str() << '\n'
            << "identity  : " << credential.identity().str() << '\n'
            << "issuer    : " << cert.issuer().str() << '\n'
            << "type      : " << to_string(cert.proxy_type()) << " (depth "
            << credential.delegation_depth() << ")\n"
            << "not after : " << format_utc(credential.not_after()) << '\n'
            << "time left : "
            << (credential.expired()
                    ? "expired"
                    : format_duration(credential.remaining_lifetime()))
            << '\n'
            << "key       : "
            << (credential.key().type() == crypto::KeyType::kRsa ? "RSA-"
                                                                 : "EC-")
            << credential.key().bits() << '\n';
  if (const auto policy = cert.restriction_policy()) {
    std::cout << "policy    : " << *policy << '\n';
  }
  if (const auto trust = args.get("--trust")) {
    const auto store = tools::load_trust_store(*trust);
    try {
      const auto id = store.verify(credential.full_chain());
      std::cout << "verify    : OK (identity " << id.identity.str()
                << (id.limited ? ", LIMITED" : "") << ")\n";
    } catch (const Error& e) {
      std::cout << "verify    : FAILED — " << e.what() << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(argc, argv,
                                  {"--cred", "--trust", "--key-passphrase"});
  return myproxy::tools::run_tool("grid-proxy-info", [&args] { info(args); });
}
