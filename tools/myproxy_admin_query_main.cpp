// myproxy-admin-query: offline inspection of a repository storage
// directory (runs on the repository host, against the FileCredentialStore
// layout; the original distribution shipped the same administrative tool).
// Shows metadata only — record blobs stay sealed.
//
// Usage:
//   myproxy-admin-query --storage /var/lib/myproxy [--user alice]
//       [--expired]   # only expired records (candidates for sweeping)
//
// Online mode: query a running server's operation counters and
// replication state (role, lag, last acked sequence) over the STATS
// command instead of reading the storage directory:
//   myproxy-admin-query --stats --cred admincred.pem --trust ca.pem
//       --port 7512[,7513,...]
//
// Cluster administration (the credential must match the server's
// cluster_admin_acl):
//   myproxy-admin-query --map ...          # fetch + print the shard map
//   myproxy-admin-query --migrate SHARD --target PORT ...
//       # move one shard to a new primary online (bulk copy, drain, fence,
//       # commit, epoch bump) and print the server's result fields
#include "client/myproxy_client.hpp"
#include "common/strings.hpp"
#include "repository/credential_store.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void print_record(const repository::CredentialRecord& record) {
  std::cout << "user '" << record.username << "' slot '"
            << (record.name.empty() ? "(default)" : record.name) << "'\n"
            << "  owner:   " << record.owner_dn << '\n'
            << "  created: " << format_utc(record.created_at) << '\n'
            << "  expires: " << format_utc(record.not_after)
            << (record.expired() ? "  [EXPIRED]" : "") << '\n'
            << "  sealing: " << to_string(record.sealing) << '\n'
            << "  max delegation: "
            << format_duration(record.max_delegation_lifetime) << '\n';
  for (const auto& pattern : record.retriever_patterns) {
    std::cout << "  retriever: " << pattern << '\n';
  }
  for (const auto& pattern : record.renewer_patterns) {
    std::cout << "  renewer:   " << pattern << '\n';
  }
  if (record.always_limited) std::cout << "  limited: yes\n";
  if (record.restriction.has_value()) {
    std::cout << "  restriction: " << *record.restriction << '\n';
  }
  if (record.otp.has_value()) {
    std::cout << "  otp remaining: " << record.otp->remaining << '\n';
  }
}

client::MyProxyClient make_client(const tools::Args& args) {
  const auto credential =
      tools::load_credential(args.get_or("--cred", "admincred.pem"),
                             args.get_or("--key-passphrase", ""));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  return {credential, std::move(trust), tools::ports_from_args(args),
          tools::retry_policy_from_args(args)};
}

void stats(const tools::Args& args) {
  client::MyProxyClient client = make_client(args);
  // The server returns a flat key/value map; print it sorted as-is so new
  // counters show up without a tool release.
  for (const auto& [key, value] : client.server_stats()) {
    std::cout << key << '=' << value << '\n';
  }
}

void cluster_map(const tools::Args& args) {
  client::MyProxyClient client = make_client(args);
  // The serialized form is the wire format: versioned, line-per-shard,
  // checksummed — print it verbatim so it can be pasted into a config
  // review or diffed between nodes.
  std::cout << client.fetch_cluster_map().serialize();
}

void migrate(const tools::Args& args) {
  const auto shard = strings::parse_u64(args.get_or("--migrate", ""));
  const auto target = strings::parse_u64(args.get_or("--target", ""));
  if (!shard.has_value() || !target.has_value() || *target == 0 ||
      *target > 0xffff) {
    throw ConfigError("--migrate needs a shard id and --target a port");
  }
  client::MyProxyClient client = make_client(args);
  // Fetch the live map first so the MIGRATE lands on the shard's current
  // owner instead of whichever endpoint the operator happened to name.
  client.fetch_cluster_map();
  const auto result = client.cluster_migrate(
      static_cast<std::uint32_t>(*shard),
      static_cast<std::uint16_t>(*target));
  for (const auto& [key, value] : result) {
    std::cout << key << '=' << value << '\n';
  }
}

void query(const tools::Args& args) {
  const std::string storage = args.get_or("--storage", "/var/lib/myproxy");
  repository::FileCredentialStore store(storage);
  const bool only_expired = args.has("--expired");
  const auto user_filter = args.get("--user");

  std::size_t shown = 0;
  // Opening the store built its metadata index (migrating any legacy
  // flat-layout records along the way); enumerate users straight from it.
  for (const auto& username : store.usernames()) {
    if (user_filter.has_value() && *user_filter != username) continue;
    for (const auto& record : store.list(username)) {
      if (only_expired && !record.expired()) continue;
      print_record(record);
      ++shown;
    }
  }
  std::cout << shown << " record(s)";
  if (only_expired) std::cout << " (expired only)";
  std::cout << " in " << storage << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags({"--storage", "--user", "--cred",
                                        "--trust", "--port",
                                        "--key-passphrase", "--migrate",
                                        "--target"}));
  return myproxy::tools::run_tool("myproxy-admin-query", [&args] {
    if (args.has("--stats")) {
      stats(args);
    } else if (args.has("--map")) {
      cluster_map(args);
    } else if (args.has("--migrate")) {
      migrate(args);
    } else {
      query(args);
    }
  });
}
