// myproxy-init: delegate a proxy credential to the repository (Figure 1).
//
// Usage:
//   myproxy-init --cred usercred.pem --trust ca.pem --port 7512[,7513,...]
//       --user alice [--lifetime 604800] [--max-delegation 43200]
//       [--name slot] [--retriever "<dn glob>"] [--renewer "<dn glob>"]
//       [--limited] [--restriction "rights=a,b"] [--tags t1,t2] [--otp]
//       [--passphrase-file f]
#include "client/myproxy_client.hpp"
#include "gsi/proxy.hpp"
#include "tool_util.hpp"

namespace {

using namespace myproxy;  // NOLINT(google-build-using-namespace) tool main

void init(const tools::Args& args) {
  const auto source =
      tools::load_credential(args.get_or("--cred", "usercred.pem"),
                             args.get_or("--key-passphrase", ""));
  auto trust = tools::load_trust_store(args.get_or("--trust", "ca.pem"));
  const auto ports = tools::ports_from_args(args);
  const std::string username = args.get_or("--user", "anonymous");
  const std::string passphrase =
      tools::read_passphrase(args, "Enter MyProxy pass phrase");

  // Create a fresh proxy to authenticate the connection and to delegate
  // from (the long-term key signs once, then stays untouched — §2.3).
  gsi::ProxyOptions proxy_options;
  proxy_options.lifetime =
      Seconds(std::stoll(args.get_or("--lifetime",
                                     std::to_string(kDefaultRepositoryLifetime.count()))));
  const gsi::Credential proxy = gsi::create_proxy(source, proxy_options);

  client::MyProxyClient client(proxy, std::move(trust), ports,
                               tools::retry_policy_from_args(args));
  client::PutOptions options;
  options.stored_lifetime = proxy_options.lifetime;
  options.max_delegation_lifetime =
      Seconds(std::stoll(args.get_or("--max-delegation", "0")));
  options.credential_name = args.get_or("--name", "");
  if (const auto retriever = args.get("--retriever")) {
    options.retriever_patterns.push_back(*retriever);
  }
  if (const auto renewer = args.get("--renewer")) {
    options.renewer_patterns.push_back(*renewer);
  }
  options.always_limited = args.has("--limited");
  if (const auto restriction = args.get("--restriction")) {
    options.restriction = *restriction;
  }
  options.task_tags = args.get_or("--tags", "");
  options.use_otp = args.has("--otp");

  client.put(username, passphrase, proxy, options);
  std::cout << "A proxy valid for "
            << format_duration(proxy.remaining_lifetime()) << " for user "
            << username << " now exists on the repository.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const myproxy::tools::Args args(
      argc, argv,
      myproxy::tools::with_retry_flags(
          {"--cred", "--trust", "--port", "--user", "--lifetime",
           "--max-delegation", "--name", "--retriever", "--renewer",
           "--restriction", "--tags", "--passphrase-file",
           "--key-passphrase"}));
  return myproxy::tools::run_tool("myproxy-init", [&args] { init(args); });
}
