// Shared plumbing for the myproxy-* command-line tools: flag parsing, file
// I/O, pass-phrase prompting, and credential/trust-store loading.
#pragma once

#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "client/myproxy_client.hpp"
#include "common/error.hpp"
#include "gsi/credential.hpp"
#include "pki/trust_store.hpp"

namespace myproxy::tools {

/// "--flag value" and "--switch" style arguments; positionals preserved.
class Args {
 public:
  Args(int argc, char** argv, std::vector<std::string> value_flags);

  [[nodiscard]] std::optional<std::string> get(const std::string& flag) const;
  [[nodiscard]] std::string get_or(const std::string& flag,
                                   std::string fallback) const;
  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> switches_;
  std::vector<std::string> positional_;
};

[[nodiscard]] std::string read_file(const std::filesystem::path& path);
void write_file(const std::filesystem::path& path, std::string_view content,
                bool private_mode = false);

/// Read a pass phrase: from --passphrase-file if given, else from stdin.
[[nodiscard]] std::string read_passphrase(const Args& args,
                                          std::string_view prompt);

/// Load a credential file (cert + key [+ chain]); prompts for a pass
/// phrase if the key is encrypted and none was supplied.
[[nodiscard]] gsi::Credential load_credential(
    const std::filesystem::path& path, std::string_view key_passphrase = {});

/// Load every certificate in `path` as a trusted root.
[[nodiscard]] pki::TrustStore load_trust_store(
    const std::filesystem::path& path);

/// Run `body` with uniform error reporting; returns the process exit code.
int run_tool(std::string_view name, const std::function<void()>& body);

/// Parse the --port flag as a comma-separated endpoint list ("7512" or
/// "7512,7513,7514") — primary first, replicas after, matching
/// MyProxyClient's failover contract. `fallback` is used when the flag is
/// absent.
[[nodiscard]] std::vector<std::uint16_t> ports_from_args(
    const Args& args, std::string_view fallback = "7512");

/// Append the shared connection-robustness flags (--retries,
/// --retry-backoff-ms, --connect-timeout-ms, --io-timeout-ms) to a tool's
/// value-flag list.
[[nodiscard]] std::vector<std::string> with_retry_flags(
    std::vector<std::string> value_flags);

/// Build a client RetryPolicy from the shared flags (defaults otherwise).
[[nodiscard]] client::RetryPolicy retry_policy_from_args(const Args& args);

}  // namespace myproxy::tools
