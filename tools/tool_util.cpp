#include "tool_util.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/format.hpp"
#include "common/strings.hpp"
#include "pki/certificate.hpp"

namespace myproxy::tools {

Args::Args(int argc, char** argv, std::vector<std::string> value_flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const bool takes_value =
          std::find(value_flags.begin(), value_flags.end(), arg) !=
          value_flags.end();
      if (takes_value) {
        if (i + 1 >= argc) {
          throw ConfigError(fmt::format("flag {} requires a value", arg));
        }
        values_[arg] = argv[++i];
      } else {
        switches_.push_back(arg);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> Args::get(const std::string& flag) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& flag, std::string fallback) const {
  return get(flag).value_or(std::move(fallback));
}

bool Args::has(const std::string& flag) const {
  return values_.count(flag) != 0 ||
         std::find(switches_.begin(), switches_.end(), flag) !=
             switches_.end();
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError(fmt::format("cannot open {}", path.string()));
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::filesystem::path& path, std::string_view content,
                bool private_mode) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError(fmt::format("cannot write {}", path.string()));
  out << content;
  out.close();
  if (private_mode) {
    std::error_code ec;
    std::filesystem::permissions(path,
                                 std::filesystem::perms::owner_read |
                                     std::filesystem::perms::owner_write,
                                 std::filesystem::perm_options::replace, ec);
  }
}

std::string read_passphrase(const Args& args, std::string_view prompt) {
  if (const auto file = args.get("--passphrase-file")) {
    std::string phrase = read_file(*file);
    while (!phrase.empty() &&
           (phrase.back() == '\n' || phrase.back() == '\r')) {
      phrase.pop_back();
    }
    return phrase;
  }
  std::cerr << prompt << ": " << std::flush;
  std::string phrase;
  std::getline(std::cin, phrase);
  return phrase;
}

gsi::Credential load_credential(const std::filesystem::path& path,
                                std::string_view key_passphrase) {
  return gsi::Credential::from_pem(read_file(path), key_passphrase);
}

pki::TrustStore load_trust_store(const std::filesystem::path& path) {
  pki::TrustStore store;
  for (const auto& cert :
       pki::Certificate::chain_from_pem(read_file(path))) {
    store.add_root(cert);
  }
  return store;
}

std::vector<std::uint16_t> ports_from_args(const Args& args,
                                           std::string_view fallback) {
  const std::string spec = args.get_or("--port", std::string(fallback));
  std::vector<std::uint16_t> ports;
  for (const std::string& part : strings::split(spec, ',')) {
    const std::string token(strings::trim(part));
    if (token.empty()) continue;
    int value = 0;
    try {
      value = std::stoi(token);
    } catch (const std::exception&) {
      throw ConfigError(fmt::format("invalid port '{}' in --port", token));
    }
    if (value < 1 || value > 65535) {
      throw ConfigError(fmt::format("port {} out of range in --port", value));
    }
    ports.push_back(static_cast<std::uint16_t>(value));
  }
  if (ports.empty()) {
    throw ConfigError("--port needs at least one port number");
  }
  return ports;
}

std::vector<std::string> with_retry_flags(
    std::vector<std::string> value_flags) {
  for (const char* flag : {"--retries", "--retry-backoff-ms",
                           "--connect-timeout-ms", "--io-timeout-ms"}) {
    value_flags.emplace_back(flag);
  }
  return value_flags;
}

client::RetryPolicy retry_policy_from_args(const Args& args) {
  client::RetryPolicy policy;
  policy.max_attempts =
      std::stoi(args.get_or("--retries",
                            std::to_string(policy.max_attempts)));
  if (policy.max_attempts < 1) {
    throw ConfigError("--retries must be at least 1");
  }
  policy.initial_backoff = Millis(std::stoll(args.get_or(
      "--retry-backoff-ms", std::to_string(policy.initial_backoff.count()))));
  policy.connect_timeout = Millis(std::stoll(args.get_or(
      "--connect-timeout-ms",
      std::to_string(policy.connect_timeout.count()))));
  policy.io_timeout = Millis(std::stoll(args.get_or(
      "--io-timeout-ms", std::to_string(policy.io_timeout.count()))));
  return policy;
}

int run_tool(std::string_view name, const std::function<void()>& body) {
  try {
    body();
    return 0;
  } catch (const Error& e) {
    std::cerr << name << ": " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << name << ": unexpected error: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace myproxy::tools
